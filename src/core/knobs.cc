#include "core/knobs.hh"

#include "util/logging.hh"
#include "util/strings.hh"
#include "workload/profile.hh"

namespace softsku {

std::vector<KnobId>
allKnobIds()
{
    return {KnobId::CoreFrequency, KnobId::UncoreFrequency,
            KnobId::CoreCount,     KnobId::Cdp,
            KnobId::Prefetcher,    KnobId::Thp,
            KnobId::Shp};
}

std::string
knobKey(KnobId id)
{
    switch (id) {
      case KnobId::CoreFrequency: return "core_freq";
      case KnobId::UncoreFrequency: return "uncore_freq";
      case KnobId::CoreCount: return "core_count";
      case KnobId::Cdp: return "cdp";
      case KnobId::Prefetcher: return "prefetcher";
      case KnobId::Thp: return "thp";
      case KnobId::Shp: return "shp";
    }
    panic("unreachable knob id");
}

KnobId
knobFromKey(const std::string &key)
{
    std::string k = toLower(key);
    for (KnobId id : allKnobIds()) {
        if (knobKey(id) == k)
            return id;
    }
    fatal("unknown knob '%s'", key.c_str());
}

std::string
knobDisplayName(KnobId id)
{
    switch (id) {
      case KnobId::CoreFrequency: return "Core frequency";
      case KnobId::UncoreFrequency: return "Uncore frequency";
      case KnobId::CoreCount: return "Core count";
      case KnobId::Cdp: return "CDP: LLC code/data ways";
      case KnobId::Prefetcher: return "Prefetcher";
      case KnobId::Thp: return "Transparent huge pages";
      case KnobId::Shp: return "Static huge pages";
    }
    panic("unreachable knob id");
}

bool
knobRequiresReboot(KnobId id)
{
    // Core-count changes go through the boot loader's isolcpus flag
    // (Sec. 5); SHP reservations are boot-time kernel parameters.
    return id == KnobId::CoreCount || id == KnobId::Shp;
}

int
KnobConfig::resolvedCores(const PlatformSpec &platform) const
{
    if (activeCores <= 0)
        return platform.totalCores();
    return std::min(activeCores, platform.totalCores());
}

KnobConfig
KnobConfig::canonical(const PlatformSpec &platform) const
{
    KnobConfig out = *this;
    out.activeCores = resolvedCores(platform);
    return out;
}

std::string
KnobConfig::describe() const
{
    std::string cdpText =
        cdp.enabled ? format("{%dd,%dc}", cdp.dataWays, cdp.codeWays)
                    : "off";
    return format("core=%.1fGHz uncore=%.1fGHz cores=%s cdp=%s pf=%s "
                  "thp=%s shp=%d",
                  coreFreqGHz, uncoreFreqGHz,
                  activeCores <= 0 ? "all"
                                   : format("%d", activeCores).c_str(),
                  cdpText.c_str(),
                  prefetcherPresetKey(prefetch).c_str(),
                  thpModeName(thp).c_str(), shpCount);
}

Json
KnobConfig::toJson() const
{
    Json doc = Json::object();
    doc.set("core_freq_ghz", Json(coreFreqGHz));
    doc.set("uncore_freq_ghz", Json(uncoreFreqGHz));
    doc.set("active_cores", Json(activeCores));
    Json cdpDoc = Json::object();
    cdpDoc.set("enabled", Json(cdp.enabled));
    cdpDoc.set("data_ways", Json(cdp.dataWays));
    cdpDoc.set("code_ways", Json(cdp.codeWays));
    doc.set("cdp", std::move(cdpDoc));
    doc.set("prefetcher", Json(prefetcherPresetKey(prefetch)));
    doc.set("thp", Json(thpModeName(thp)));
    doc.set("shp_count", Json(shpCount));
    return doc;
}

KnobConfig
KnobConfig::fromJson(const Json &doc)
{
    KnobConfig cfg;
    cfg.coreFreqGHz = doc.numberOr("core_freq_ghz", cfg.coreFreqGHz);
    cfg.uncoreFreqGHz = doc.numberOr("uncore_freq_ghz", cfg.uncoreFreqGHz);
    cfg.activeCores =
        static_cast<int>(doc.numberOr("active_cores", cfg.activeCores));
    if (doc.contains("cdp")) {
        const Json &cdpDoc = doc.at("cdp");
        cfg.cdp.enabled = cdpDoc.boolOr("enabled", false);
        cfg.cdp.dataWays =
            static_cast<int>(cdpDoc.numberOr("data_ways", 0));
        cfg.cdp.codeWays =
            static_cast<int>(cdpDoc.numberOr("code_ways", 0));
    }
    if (doc.contains("prefetcher"))
        cfg.prefetch = prefetcherPresetFromKey(doc.at("prefetcher").asString());
    if (doc.contains("thp"))
        cfg.thp = thpModeFromString(doc.at("thp").asString());
    cfg.shpCount = static_cast<int>(doc.numberOr("shp_count", 0));
    return cfg;
}

KnobConfig
productionConfig(const PlatformSpec &platform,
                 const WorkloadProfile &profile)
{
    KnobConfig cfg = stockConfig(platform, profile);
    cfg.thp = ThpMode::Madvise;
    if (platform.microarchitecture == "Intel Broadwell")
        cfg.prefetch = PrefetcherPreset::L2StreamAndDcu;
    if (profile.name == "web" && profile.usesShp) {
        cfg.shpCount =
            platform.microarchitecture == "Intel Broadwell" ? 488 : 200;
    }
    return cfg;
}

KnobConfig
stockConfig(const PlatformSpec &platform, const WorkloadProfile &profile)
{
    KnobConfig cfg;
    cfg.coreFreqGHz = platform.coreFreqMaxGHz;
    if (profile.usesAvx)
        cfg.coreFreqGHz -= 0.2;
    cfg.uncoreFreqGHz = platform.uncoreFreqMaxGHz;
    cfg.activeCores = 0;
    cfg.cdp = CdpSetting{};
    cfg.prefetch = PrefetcherPreset::AllOn;
    cfg.thp = ThpMode::Always;
    cfg.shpCount = 0;
    return cfg;
}

} // namespace softsku
