#include "core/bai.hh"

#include <algorithm>
#include <limits>

#include "stats/students_t.hh"
#include "util/logging.hh"

namespace softsku {

SearchMode
searchModeFromString(const std::string &text)
{
    if (text == "fixed")
        return SearchMode::Fixed;
    if (text == "race")
        return SearchMode::Race;
    if (text == "halving")
        return SearchMode::Halving;
    fatal("unknown search mode '%s' (expected fixed|race|halving)",
          text.c_str());
}

std::string
searchModeName(SearchMode mode)
{
    switch (mode) {
      case SearchMode::Fixed: return "fixed";
      case SearchMode::Race: return "race";
      case SearchMode::Halving: return "halving";
    }
    return "fixed";
}

namespace {

/**
 * The surviving arm with the highest mean gain, lowest index on ties.
 * Shared by both engines so their selection rule cannot drift apart.
 */
std::size_t
bestSurvivor(const std::vector<BaiArm> &arms)
{
    std::size_t best = arms.size();
    for (std::size_t i = 0; i < arms.size(); ++i) {
        if (arms[i].eliminated)
            continue;
        if (best == arms.size() ||
            arms[i].gains.mean() > arms[best].gains.mean())
            best = i;
    }
    return best;
}

} // namespace

BaiRace::BaiRace(std::size_t armCount, const BaiOptions &options)
    : options_(options), arms_(armCount), floor_(options.futilityGain)
{
    if (armCount == 0)
        fatal("BaiRace needs at least one arm");
    if (options_.chunkSamples == 0)
        fatal("BaiRace needs a positive chunk size");
}

std::uint64_t
BaiRace::maxRounds() const
{
    // An arm can be checked at most once per absorbed chunk, and no arm
    // absorbs more than ceil(maxSamples / chunkSamples) chunks.
    return (options_.maxSamplesPerArm + options_.chunkSamples - 1) /
           options_.chunkSamples;
}

std::vector<std::size_t>
BaiRace::pending() const
{
    std::vector<std::size_t> need;
    if (decided())
        return need;
    for (std::size_t i = 0; i < arms_.size(); ++i) {
        const BaiArm &arm = arms_[i];
        if (arm.eliminated)
            continue;
        if (arm.chunksPulled * options_.chunkSamples <
            options_.maxSamplesPerArm)
            need.push_back(i);
    }
    return need;
}

void
BaiRace::absorb(std::size_t i, const RunningStat &chunkGains)
{
    BaiArm &arm = arms_.at(i);
    arm.gains.merge(chunkGains);
    arm.chunksPulled += 1;
}

void
BaiRace::update(std::size_t i, const RunningStat &cumulativeGains)
{
    BaiArm &arm = arms_.at(i);
    arm.gains = cumulativeGains;
    arm.chunksPulled += 1;
}

void
BaiRace::withdraw(std::size_t i)
{
    BaiArm &arm = arms_.at(i);
    if (arm.eliminated)
        return;
    arm.eliminated = true;
    arm.eliminatedAtRound = rounds_ + 1;
}

void
BaiRace::park(std::size_t i)
{
    arms_.at(i).parked = true;
}

void
BaiRace::raiseFloor(double gain)
{
    floor_ = std::max(floor_, gain);
}

double
BaiRace::radius(std::size_t i) const
{
    const RunningStat &gains = arms_.at(i).gains;
    if (gains.count() < 2)
        return std::numeric_limits<double>::infinity();
    // Bonferroni over the arms: each interval runs at confidence
    // 1 - delta / K.  The repeated looks across rounds are *not*
    // corrected for — consecutive checks on a growing sample are
    // almost perfectly correlated, so a per-round correction (the
    // delta/(K*R) union bound) prices eliminations at ~2x the samples
    // for no measurable error reduction.  The Monte-Carlo harness in
    // tests/core/bai_test.cc is the arbiter: it measures the empirical
    // error rate of exactly this rule against the configured delta.
    double effective =
        1.0 - options_.delta / static_cast<double>(arms_.size());
    return gains.confidenceHalfWidth(effective);
}

std::size_t
BaiRace::eliminateRound()
{
    rounds_ += 1;
    std::size_t incumbent = bestSurvivor(arms_);
    if (incumbent == arms_.size())
        return 0;
    const BaiArm &leader = arms_[incumbent];
    if (leader.gains.count() < options_.minSamplesPerArm)
        return 0;
    double leaderLow = leader.gains.mean() - radius(incumbent);
    std::size_t struck = 0;
    for (std::size_t i = 0; i < arms_.size(); ++i) {
        if (arms_[i].eliminated || arms_[i].parked)
            continue;
        const BaiArm &arm = arms_[i];
        if (arm.gains.count() < options_.minSamplesPerArm)
            continue;
        double armHigh = arm.gains.mean() + radius(i);
        // The futility floor applies to the incumbent too: when no arm
        // can reach a material gain the whole contest is moot.  It
        // ratchets up as contenders park with settled positive verdicts
        // (raiseFloor), which is what retires a trailing plateau arm in
        // hundreds of samples instead of thousands.
        bool futile = armHigh < floor_;
        bool beaten = i != incumbent && armHigh < leaderLow;
        if (futile || beaten) {
            arms_[i].eliminated = true;
            arms_[i].eliminatedAtRound = rounds_;
            struck += 1;
        }
    }
    return struck;
}

bool
BaiRace::decided() const
{
    std::size_t alive = 0;
    bool budgetLeft = false;
    for (const BaiArm &arm : arms_) {
        if (arm.eliminated)
            continue;
        alive += 1;
        if (arm.chunksPulled * options_.chunkSamples <
            options_.maxSamplesPerArm)
            budgetLeft = true;
    }
    // One contender standing, or every survivor gave up at the budget
    // cap (the fixed protocol's 30 k give-up rule, reached jointly).
    return alive <= 1 || !budgetLeft;
}

std::size_t
BaiRace::best() const
{
    return bestSurvivor(arms_);
}

std::uint64_t
BaiRace::earlyStops() const
{
    std::uint64_t stops = 0;
    for (const BaiArm &arm : arms_)
        if (arm.eliminated &&
            arm.chunksPulled * options_.chunkSamples <
                options_.maxSamplesPerArm)
            stops += 1;
    return stops;
}

BaiHalving::BaiHalving(std::size_t armCount, const BaiOptions &options)
    : options_(options), arms_(armCount)
{
    if (armCount == 0)
        fatal("BaiHalving needs at least one arm");
    if (options_.chunkSamples == 0)
        fatal("BaiHalving needs a positive chunk size");
}

std::uint64_t
BaiHalving::chunksThisRound() const
{
    // 1, 2, 4, ... chunks per survivor, clamped to the per-arm budget.
    std::uint64_t allowance = std::uint64_t(1) << std::min<std::uint64_t>(
        rounds_, 62);
    std::uint64_t budgetChunks = std::max<std::uint64_t>(
        1, options_.maxSamplesPerArm / options_.chunkSamples);
    return std::min(allowance, budgetChunks);
}

std::vector<std::size_t>
BaiHalving::pending() const
{
    std::vector<std::size_t> need;
    if (decided())
        return need;
    for (std::size_t i = 0; i < arms_.size(); ++i)
        if (!arms_[i].eliminated)
            need.push_back(i);
    return need;
}

void
BaiHalving::absorb(std::size_t i, const RunningStat &chunkGains)
{
    BaiArm &arm = arms_.at(i);
    arm.gains.merge(chunkGains);
    arm.chunksPulled += 1;
}

void
BaiHalving::update(std::size_t i, const RunningStat &cumulativeGains)
{
    BaiArm &arm = arms_.at(i);
    arm.gains = cumulativeGains;
    arm.chunksPulled += 1;
}

void
BaiHalving::withdraw(std::size_t i)
{
    BaiArm &arm = arms_.at(i);
    if (arm.eliminated)
        return;
    arm.eliminated = true;
    arm.eliminatedAtRound = rounds_ + 1;
}

std::size_t
BaiHalving::halveRound()
{
    rounds_ += 1;
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < arms_.size(); ++i)
        if (!arms_[i].eliminated)
            alive.push_back(i);
    if (alive.size() <= 1)
        return 0;
    // Sort survivors by mean gain, best first; equal means keep their
    // index order (stable), so ties always favor the earlier arm.
    std::stable_sort(alive.begin(), alive.end(),
                     [this](std::size_t a, std::size_t b) {
                         return arms_[a].gains.mean() >
                                arms_[b].gains.mean();
                     });
    std::size_t keep = (alive.size() + 1) / 2;
    std::size_t dropped = 0;
    for (std::size_t rank = keep; rank < alive.size(); ++rank) {
        arms_[alive[rank]].eliminated = true;
        arms_[alive[rank]].eliminatedAtRound = rounds_;
        dropped += 1;
    }
    return dropped;
}

bool
BaiHalving::decided() const
{
    std::size_t alive = 0;
    for (const BaiArm &arm : arms_)
        if (!arm.eliminated)
            alive += 1;
    return alive <= 1;
}

std::size_t
BaiHalving::best() const
{
    return bestSurvivor(arms_);
}

} // namespace softsku
