/**
 * @file
 * μSKU — the design tool (paper Sec. 4, Fig 13).
 *
 * Wiring: input file → A/B test configurator → A/B tester (production
 * systems, live traffic) → design-space map → soft-SKU generator →
 * prolonged validation.  Three search strategies are provided:
 * independent knob scaling (the deployed default), exhaustive cross
 * product (bounded — the paper notes it cannot finish between code
 * pushes), and greedy hill climbing (the discussion-section
 * extension).
 *
 * The sweep engine evaluates A/B comparisons as independent tasks on a
 * work-stealing thread pool (UskuOptions::jobs).  Every task measures
 * in its own ProductionEnvironment clone whose noise RNG is a
 * substream keyed by the comparison itself, so the reduced design-space
 * map and report are bit-identical at any thread count — a parallel
 * sweep that changed results would be useless for A/B science.
 * Repeated comparisons (hill-climb revisits, baseline re-tests) are
 * served from a memo cache and skip measurement entirely.
 */

#ifndef SOFTSKU_CORE_USKU_HH
#define SOFTSKU_CORE_USKU_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/configurator.hh"
#include "core/design_space_map.hh"
#include "core/input_spec.hh"
#include "core/soft_sku.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "sim/production_env.hh"
#include "telemetry/ods.hh"
#include "util/thread_pool.hh"

namespace softsku {

/** Everything a μSKU run produces. */
struct UskuReport
{
    InputSpec spec;
    TestPlan plan;
    KnobConfig production;          //!< hand-tuned baseline
    KnobConfig stock;               //!< fresh-install reference
    KnobConfig softSku;             //!< the composed winner
    DesignSpaceMap map;
    ValidationResult validation;

    double productionMips = 0.0;
    double stockMips = 0.0;
    double softSkuMips = 0.0;
    double measurementHours = 0.0;  //!< simulated A/B wall clock
    std::uint64_t configsEvaluated = 0;
    std::uint64_t abComparisons = 0;  //!< comparisons the sweep asked for
    std::uint64_t cacheHits = 0;      //!< served from the memo cache

    /**
     * Deterministic-scope metrics recorded during this run (sample
     * counts, fault events, sim-time latency histograms).  Serialized
     * as the "metrics" report section and byte-compared across --jobs;
     * operational metrics (wall clock, pool scheduling) never land
     * here — ask Usku::fullMetrics() for those.
     */
    MetricsSnapshot metrics;

    /** The hazards the environment injected during this run. */
    FaultPlan faultPlan;
    /** Fault/recovery events the sweep observed and survived.  Only
     *  serialized when a fault plan was active, so benign-run reports
     *  are byte-identical to the pre-fault-injection format. */
    FaultTelemetry faults;

    /** Gain of the soft SKU over the hand-tuned production config. */
    double gainOverProductionPercent() const;

    /** Gain of the soft SKU over the stock config. */
    double gainOverStockPercent() const;

    /** Serialize the full report. */
    Json toJson() const;

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

/**
 * Execution policy for the sweep engine.  Deliberately *not* part of
 * InputSpec: thread count is an operational choice, never a scientific
 * one, and must not influence any reported number.  The robustness
 * policy *is* scientific (it changes which samples count), but it is
 * an operator's defense posture rather than an experiment parameter —
 * and with everything off it is bit-for-bit the benign behavior.
 */
struct UskuOptions
{
    /**
     * Worker threads evaluating sweep tasks.  1 runs inline (no pool);
     * 0 asks for the hardware concurrency.  Reports are bit-identical
     * for every value.
     */
    unsigned jobs = 1;

    /** Fault defenses: retries, robust filtering, the QoS guardrail. */
    RobustnessPolicy robustness;

    /** Render a live progress line (stderr) while the sweep runs. */
    bool progress = false;
};

/** The tool facade. */
class Usku
{
  public:
    /**
     * @param env     the production environment to measure in; the
     *                caller owns it so benches can reuse simulation
     *                caches
     * @param options sweep execution policy (--jobs)
     */
    explicit Usku(ProductionEnvironment &env, UskuOptions options = {});
    ~Usku();

    /** Run the full pipeline for @p spec. */
    UskuReport run(const InputSpec &spec);

    /**
     * Every metric the last run recorded — the deterministic rows that
     * went into the report plus operational rows (wall clock, pool
     * scheduling) that must never enter byte-compared output.
     */
    MetricsSnapshot fullMetrics() const;

  private:
    /** One A/B task: measure @p candidate against @p baseline. */
    struct Comparison
    {
        KnobConfig baseline;
        KnobConfig candidate;
    };

    /**
     * Evaluate a batch of comparisons — in parallel when a pool is
     * configured — and return results in batch order.  Duplicate
     * comparisons (within the batch or remembered from earlier
     * batches) are served from the memo cache.
     */
    std::vector<ABTestResult> evaluate(const std::vector<Comparison> &batch,
                                       const InputSpec &spec);

    DesignSpaceMap sweepIndependent(const TestPlan &plan,
                                    const KnobConfig &baseline,
                                    const InputSpec &spec);
    DesignSpaceMap sweepExhaustive(const TestPlan &plan,
                                   const KnobConfig &baseline,
                                   const InputSpec &spec);
    DesignSpaceMap sweepHillClimb(const TestPlan &plan,
                                  const KnobConfig &baseline,
                                  const InputSpec &spec);

    ProductionEnvironment &env_;
    UskuOptions options_;
    std::unique_ptr<ThreadPool> pool_;
    /** Comparison key → measured result; lives as long as the tool. */
    std::unordered_map<std::string, ABTestResult> memo_;
    std::uint64_t comparisons_ = 0;
    std::uint64_t cacheHits_ = 0;
    double measuredSec_ = 0.0;
    /** Fault events accumulated in commit order (thread-invariant). */
    FaultTelemetry faults_;
    /** Per-run flight-recorder registry (reset at the top of run()). */
    MetricsRegistry metrics_;
    /** Ordinal of the next evaluate() batch, for span root paths. */
    std::uint64_t batchSeq_ = 0;
    /** Live progress line; only alive during run() when requested. */
    std::unique_ptr<SweepProgress> progress_;
};

} // namespace softsku

#endif // SOFTSKU_CORE_USKU_HH
