/**
 * @file
 * μSKU — the design tool (paper Sec. 4, Fig 13).
 *
 * Wiring: input file → A/B test configurator → A/B tester (production
 * systems, live traffic) → design-space map → soft-SKU generator →
 * prolonged validation.  Three search strategies are provided:
 * independent knob scaling (the deployed default), exhaustive cross
 * product (bounded — the paper notes it cannot finish between code
 * pushes), and greedy hill climbing (the discussion-section
 * extension).
 *
 * The sweep engine evaluates A/B comparisons as independent tasks on a
 * work-stealing thread pool (UskuOptions::jobs).  Every task measures
 * in its own ProductionEnvironment clone whose noise RNG is a
 * substream keyed by the comparison itself, so the reduced design-space
 * map and report are bit-identical at any thread count — a parallel
 * sweep that changed results would be useless for A/B science.
 * Repeated comparisons (hill-climb revisits, baseline re-tests) are
 * served from a memo cache and skip measurement entirely.
 */

#ifndef SOFTSKU_CORE_USKU_HH
#define SOFTSKU_CORE_USKU_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/configurator.hh"
#include "core/design_space_map.hh"
#include "core/input_spec.hh"
#include "core/soft_sku.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "sim/production_env.hh"
#include "telemetry/ods.hh"
#include "util/cli.hh"
#include "util/thread_pool.hh"

namespace softsku {

/**
 * Version of the report JSON layout, emitted as the document's first
 * key.  Bumped whenever a field is added, removed, or renamed so
 * downstream consumers (dashboards, the golden tests) fail loudly on a
 * layout they were not written for.
 *
 * History: 1 = the pre-orchestrator layout (implicit, no version key);
 * 2 = adds schema_version, drops the operational cache_hits count;
 * 3 = knob configs serialize as a keyed "knobs" object written by the
 * descriptor registry codecs (KnobConfig::fromJson still reads the
 * flat v2 layout).
 */
constexpr int kReportSchemaVersion = 3;

/** Everything a μSKU run produces. */
struct UskuReport
{
    InputSpec spec;
    TestPlan plan;
    KnobConfig production;          //!< hand-tuned baseline
    KnobConfig stock;               //!< fresh-install reference
    KnobConfig softSku;             //!< the composed winner
    DesignSpaceMap map;
    ValidationResult validation;

    double productionMips = 0.0;
    double stockMips = 0.0;
    double softSkuMips = 0.0;
    double measurementHours = 0.0;  //!< simulated A/B wall clock
    std::uint64_t configsEvaluated = 0;
    std::uint64_t abComparisons = 0;  //!< comparisons the sweep asked for
    /**
     * Comparisons served from the memo cache (in-tool or persisted via
     * UskuOptions::cacheDir).  Operational, not scientific: a fully
     * cache-served rerun produces a byte-identical report, so this
     * count lives in summary() and fullMetrics() but never in toJson().
     */
    std::uint64_t cacheHits = 0;

    /**
     * Deterministic-scope metrics recorded during this run (sample
     * counts, fault events, sim-time latency histograms).  Serialized
     * as the "metrics" report section and byte-compared across --jobs;
     * operational metrics (wall clock, pool scheduling) never land
     * here — ask Usku::fullMetrics() for those.
     */
    MetricsSnapshot metrics;

    /** The hazards the environment injected during this run. */
    FaultPlan faultPlan;
    /** Fault/recovery events the sweep observed and survived.  Only
     *  serialized when a fault plan was active, so benign-run reports
     *  are byte-identical to the pre-fault-injection format. */
    FaultTelemetry faults;

    /** Gain of the soft SKU over the hand-tuned production config. */
    double gainOverProductionPercent() const;

    /** Gain of the soft SKU over the stock config. */
    double gainOverStockPercent() const;

    /** Serialize the full report. */
    Json toJson() const;

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

/**
 * Execution policy for the sweep engine.  Deliberately *not* part of
 * InputSpec: thread count is an operational choice, never a scientific
 * one, and must not influence any reported number.  The robustness
 * policy *is* scientific (it changes which samples count), but it is
 * an operator's defense posture rather than an experiment parameter —
 * and with everything off it is bit-for-bit the benign behavior.
 *
 * Since the orchestrator redesign this is the whole run description:
 * fault arming, tracing, caching, and pool sharing all fold in here,
 * so a tool (or the fleet orchestrator) configures a run in one place
 * instead of poking the environment and the tracer separately.
 */
struct UskuOptions
{
    /**
     * Worker threads evaluating sweep tasks.  1 runs inline (no pool);
     * 0 asks for the hardware concurrency.  Reports are bit-identical
     * for every value.  Ignored when `pool` is set.
     */
    unsigned jobs = 1;

    /**
     * A caller-owned pool to run sweep/validation tasks on.  The fleet
     * orchestrator points every target at one shared pool so a slow
     * target's tail cannot idle the machine; the pool must outlive the
     * Usku.  Null means the tool owns a pool sized by `jobs`.
     */
    ThreadPool *pool = nullptr;

    /** Fault defenses: retries, robust filtering, the QoS guardrail. */
    RobustnessPolicy robustness;

    /**
     * Fault plan to arm the environment with (replaces the
     * ProductionEnvironment::setFaults call tools used to make).  A
     * default (all-zero) plan leaves the environment untouched, so
     * externally armed plans keep working.  When a plan is active and
     * `robustness` is still the default, the hostile() defense posture
     * is adopted automatically — measuring a hostile fleet without
     * defenses is never what an operator means.
     */
    FaultPlan faults;
    /** Seed for the fault-decision RNG streams. */
    std::uint64_t faultSeed = 1;

    /**
     * Run tag for this run's trace spans (see Tracer::setRunTag).
     * Scoped thread-locally for the duration of run(), so concurrent
     * runs on a shared pool keep disjoint span paths.  0 = use the
     * tracer's global tag.
     */
    std::uint64_t traceTag = 0;

    /**
     * Write the Chrome trace here after run().  Non-empty also arms
     * the tracer at construction, replacing the manual
     * Tracer::global().enable() dance in the tools.
     */
    std::string traceOut;

    /**
     * Directory for the persistent A/B memo cache.  When set, run()
     * preloads cached comparison outcomes whose context (seed, spec,
     * fault plan — see ab_cache.hh) matches, and persists the memo
     * back afterwards.  A repeat invocation is then fully cache-served
     * and byte-identical to the run that measured.
     */
    std::string cacheDir;

    /** Render a live progress line (stderr) while the sweep runs. */
    bool progress = false;

    /** Adopt the shared tool flag set (--jobs, --faults, ...). */
    static UskuOptions fromTool(const ToolOptions &tool);
};

/** The tool facade. */
class Usku
{
  public:
    /**
     * @param env     the production environment to measure in; the
     *                caller owns it so benches can reuse simulation
     *                caches.  When options.faults is active the
     *                environment is armed here.
     * @param options the full run description (threads/pool, fault
     *                arming, tracing, caching)
     */
    explicit Usku(ProductionEnvironment &env, UskuOptions options = {});
    ~Usku();

    /** Run the full pipeline for @p spec. */
    UskuReport run(const InputSpec &spec);

    /**
     * Every metric the last run recorded — the deterministic rows that
     * went into the report plus operational rows (wall clock, pool
     * scheduling) that must never enter byte-compared output.
     */
    MetricsSnapshot fullMetrics() const;

  private:
    /** One A/B task: measure @p candidate against @p baseline. */
    struct Comparison
    {
        KnobConfig baseline;
        KnobConfig candidate;
    };

    /**
     * One racing pull: advance a comparison's continued measurement
     * window to @p target accepted pairs (cumulative).  The chunk is
     * the memo/cache unit — its key is the comparison key plus the
     * pull @p ordinal, and each cached entry carries the *cumulative*
     * window state at that pull's end, so a warm run replays the exact
     * bit pattern the cold run's window held there.  The window itself
     * (stream, diurnal phase, warm-up) is keyed by the comparison
     * alone — the same stream the fixed protocol would measure — which
     * is what makes a parked arm's verdict bit-identical to fixed
     * mode's.
     */
    struct ChunkPull
    {
        Comparison task;
        std::uint64_t ordinal = 0;
        std::uint64_t target = 0;
        /** Let the window stop at the fixed protocol's verdict; the
         *  driver clears this for incumbent-continuation pulls past a
         *  parked verdict. */
        bool stopAtVerdict = true;
    };

    /**
     * Evaluate a batch of comparisons — in parallel when a pool is
     * configured — and return results in batch order.  Duplicate
     * comparisons (within the batch or remembered from earlier
     * batches) are served from the memo cache.
     */
    std::vector<ABTestResult> evaluate(const std::vector<Comparison> &batch,
                                       const InputSpec &spec);

    /** Chunked analogue of evaluate() for the adaptive search modes. */
    std::vector<ABTestResult> evaluateChunks(
        const std::vector<ChunkPull> &batch, const InputSpec &spec);

    /** Shared engine behind evaluate()/evaluateChunks(): @p pulls is
     *  null for full fixed-protocol comparisons, else the originating
     *  chunk pulls (per-slot cumulative targets + stop rule). */
    std::vector<ABTestResult> evaluateKeyed(
        const std::vector<Comparison> &batch,
        const std::vector<std::string> &keys,
        const std::vector<ChunkPull> *pulls, const InputSpec &spec);

    DesignSpaceMap sweepIndependent(const TestPlan &plan,
                                    const KnobConfig &baseline,
                                    const InputSpec &spec);
    DesignSpaceMap sweepExhaustive(const TestPlan &plan,
                                   const KnobConfig &baseline,
                                   const InputSpec &spec);
    DesignSpaceMap sweepHillClimb(const TestPlan &plan,
                                  const KnobConfig &baseline,
                                  const InputSpec &spec);
    /** Racing / successive elimination over each knob's arms
     *  (spec.search == Race; see core/bai.hh). */
    DesignSpaceMap sweepRace(const TestPlan &plan,
                             const KnobConfig &baseline,
                             const InputSpec &spec);
    /** Successive halving over joint knob combinations
     *  (spec.search == Halving). */
    DesignSpaceMap sweepHalving(const TestPlan &plan,
                                const KnobConfig &baseline,
                                const InputSpec &spec);

    ProductionEnvironment &env_;
    UskuOptions options_;
    /** The pool tasks run on: owned_ when the tool asked for jobs>1,
     *  the caller's shared pool when options_.pool was set. */
    std::unique_ptr<ThreadPool> ownedPool_;
    ThreadPool *pool_ = nullptr;
    /** Comparison key → measured result; lives as long as the tool. */
    std::unordered_map<std::string, ABTestResult> memo_;
    /** Comparison key → live continued measurement window (adaptive
     *  search).  Created on demand by worker tasks (map access is
     *  mutex-guarded; each window is only ever advanced by one task at
     *  a time because the race driver pulls one chunk per arm per
     *  round).  Cleared at the top of every run(). */
    std::unordered_map<std::string, std::unique_ptr<struct RaceWindow>>
        raceWindows_;
    std::mutex raceWindowsMu_;
    /** Validation-chunk key → measured chunk; same lifetime and
     *  context discipline as memo_ (persisted alongside it). */
    ValidationCache validationMemo_;
    /** Context string the memo contents were measured under; a run
     *  with a different context clears the memo first (a key is only
     *  unique within one context — see ab_cache.hh). */
    std::string memoContext_;
    /**
     * Comparison keys already accounted this run.  Report accounting
     * (measurement hours, fault telemetry, metric rows) accrues on a
     * key's *first occurrence per run* whether the result was measured
     * or replayed, so a cache-served rerun reports exactly what the
     * run that measured reported.
     */
    std::unordered_set<std::string> seenThisRun_;
    /** Canonical configurations this run touched (the report's
     *  configs_evaluated — per run, unlike the environment's
     *  cumulative simulation-cache size). */
    std::unordered_set<std::string> configsThisRun_;
    std::uint64_t comparisons_ = 0;
    std::uint64_t cacheHits_ = 0;
    double measuredSec_ = 0.0;
    /** Fault events accumulated in commit order (thread-invariant). */
    FaultTelemetry faults_;
    /** Per-run flight-recorder registry (reset at the top of run()). */
    MetricsRegistry metrics_;
    /** Ordinal of the next evaluate() batch, for span root paths. */
    std::uint64_t batchSeq_ = 0;
    /** Live progress line; only alive during run() when requested. */
    std::unique_ptr<SweepProgress> progress_;
};

} // namespace softsku

#endif // SOFTSKU_CORE_USKU_HH
