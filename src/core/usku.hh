/**
 * @file
 * μSKU — the design tool (paper Sec. 4, Fig 13).
 *
 * Wiring: input file → A/B test configurator → A/B tester (production
 * systems, live traffic) → design-space map → soft-SKU generator →
 * prolonged validation.  Three search strategies are provided:
 * independent knob scaling (the deployed default), exhaustive cross
 * product (bounded — the paper notes it cannot finish between code
 * pushes), and greedy hill climbing (the discussion-section
 * extension).
 */

#ifndef SOFTSKU_CORE_USKU_HH
#define SOFTSKU_CORE_USKU_HH

#include <string>

#include "core/configurator.hh"
#include "core/design_space_map.hh"
#include "core/input_spec.hh"
#include "core/soft_sku.hh"
#include "sim/production_env.hh"
#include "telemetry/ods.hh"

namespace softsku {

/** Everything a μSKU run produces. */
struct UskuReport
{
    InputSpec spec;
    TestPlan plan;
    KnobConfig production;          //!< hand-tuned baseline
    KnobConfig stock;               //!< fresh-install reference
    KnobConfig softSku;             //!< the composed winner
    DesignSpaceMap map;
    ValidationResult validation;

    double productionMips = 0.0;
    double stockMips = 0.0;
    double softSkuMips = 0.0;
    double measurementHours = 0.0;  //!< simulated A/B wall clock
    std::uint64_t configsEvaluated = 0;

    /** Gain of the soft SKU over the hand-tuned production config. */
    double gainOverProductionPercent() const;

    /** Gain of the soft SKU over the stock config. */
    double gainOverStockPercent() const;

    /** Serialize the full report. */
    Json toJson() const;

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

/** The tool facade. */
class Usku
{
  public:
    /**
     * @param env the production environment to measure in; the caller
     *            owns it so benches can reuse simulation caches
     */
    explicit Usku(ProductionEnvironment &env);

    /** Run the full pipeline for @p spec. */
    UskuReport run(const InputSpec &spec);

  private:
    DesignSpaceMap sweepIndependent(ABTester &tester, const TestPlan &plan,
                                    const KnobConfig &baseline);
    DesignSpaceMap sweepExhaustive(ABTester &tester, const TestPlan &plan,
                                   const KnobConfig &baseline);
    DesignSpaceMap sweepHillClimb(ABTester &tester, const TestPlan &plan,
                                  const KnobConfig &baseline);

    ProductionEnvironment &env_;
};

} // namespace softsku

#endif // SOFTSKU_CORE_USKU_HH
