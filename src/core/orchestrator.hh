/**
 * @file
 * Fleet-wide tuning orchestrator: one μSKU sweep per (service,
 * platform) target, all feeding a single shared thread pool.
 *
 * The paper tunes each of its seven microservices separately; a real
 * deployment re-tunes many service×machine targets on a cadence.  Run
 * serially, every target's validation phase and sweep tail leaves most
 * of the machine idle.  The orchestrator instead gives each target its
 * own driver thread — environment, memo cache, metrics, and report all
 * stay per-target — while every A/B comparison and validation chunk
 * lands on one shared work-stealing pool.  While one target merges its
 * validation chunks, the others' batches keep the workers busy, so the
 * pool never drains on a straggler.
 *
 * Determinism contract: a target's report depends only on its spec,
 * seed, and fault plan — never on the pool size, the other targets, or
 * which worker ran what (PR 1's per-comparison substream replay).  The
 * orchestrator therefore produces reports byte-identical to running
 * each target alone, at any --jobs value; the fleet bench asserts
 * exactly that.
 */

#ifndef SOFTSKU_CORE_ORCHESTRATOR_HH
#define SOFTSKU_CORE_ORCHESTRATOR_HH

#include <string>
#include <vector>

#include "core/input_spec.hh"
#include "core/usku.hh"
#include "sim/fleet.hh"
#include "sim/service_sim.hh"
#include "telemetry/ods.hh"

namespace softsku {

/** One service×machine tuning target. */
struct TuneTarget
{
    /** Names the microservice and platform, and carries the sweep and
     *  statistics policy (see InputSpec). */
    InputSpec spec;
    /** Ground-truth simulation window sizing for this target. */
    SimOptions simOpts;

    /** Convenience: a default-spec target for @p service on
     *  @p platform. */
    static TuneTarget of(const std::string &service,
                         const std::string &platform,
                         const SimOptions &simOpts = SimOptions{});

    /** "service:platform", the display name used in logs and tables. */
    std::string name() const;

    /**
     * Parse a "--targets=web:skylake18,ads1:broadwell16" list into
     * targets sharing @p simOpts; fatal() on malformed entries.
     */
    static std::vector<TuneTarget>
    parseList(const std::string &list, const SimOptions &simOpts);
};

/** Execution policy shared by every target of one orchestration. */
struct FleetOrchestratorOptions
{
    /**
     * Workers in the shared pool.  1 runs the targets sequentially
     * inline (no pool, no driver threads); reports are identical
     * either way.
     */
    unsigned jobs = 1;

    /** Fault defenses, applied to every target. */
    RobustnessPolicy robustness;
    /** Fault plan armed in every target's environment. */
    FaultPlan faults;
    std::uint64_t faultSeed = 1;

    /** Persistent A/B cache directory shared by all targets (each
     *  target's context maps to its own cache file). */
    std::string cacheDir;

    /** Search-mode override applied to every target's spec ("fixed",
     *  "race", "halving"); empty keeps each spec's own mode. */
    std::string search;
    /** Confidence override for every target; 0 keeps each spec's. */
    double confidence = 0.0;

    /** Live progress lines; honored only in sequential mode, where
     *  they cannot interleave. */
    bool progress = false;

    /** Adopt the shared tool flag set. */
    static FleetOrchestratorOptions fromTool(const ToolOptions &tool);
};

/** What one orchestration produced. */
struct FleetTuneResult
{
    /** Per-target reports, in the order the targets were given. */
    std::vector<UskuReport> reports;
    /** Wall-clock seconds for the whole orchestration. */
    double wallSec = 0.0;

    /** Sums over all targets (operator dashboard one-liners). */
    std::uint64_t totalComparisons() const;
    std::uint64_t totalCacheHits() const;
};

/** Post-tuning rollout configuration shared by every target. */
struct FleetRolloutPlan
{
    /** Servers in each target's fleet slice. */
    int servers = 32;
    /** Failure-domain hierarchy of each slice. */
    FleetTopology topology;
    /** Pacing/health policy applied to every rollout. */
    RolloutPolicy policy;
    /** Fleet telemetry cadence during the rollouts. */
    double sampleEverySec = 300.0;
};

/** One target's staged-rollout outcome, paired with its tuning gain. */
struct FleetRolloutOutcome
{
    std::string target;             //!< "service:platform"
    double tunedGainPercent = 0.0;  //!< report's soft-SKU gain
    RolloutResult rollout;
    /** Simulated time the rollout started (clock carried across
     *  targets). */
    double startedAtSec = 0.0;
    /**
     * FleetHealthReport::toJson() over this rollout's window —
     * deterministic, so it may ride along in byte-compared output.
     * Null when the orchestration skipped health reporting.
     */
    Json health;

    Json toJson() const;
};

/** The multi-target driver. */
class FleetOrchestrator
{
  public:
    explicit FleetOrchestrator(FleetOrchestratorOptions options = {});

    /**
     * Tune every target and return the reports in target order.
     * Targets must be distinct (duplicate targets would race on the
     * same cache file when cacheDir is set).
     */
    FleetTuneResult tuneAll(const std::vector<TuneTarget> &targets);

    /**
     * Deploy every tuned target's winning soft SKU across a fleet
     * slice with a staged rollout, sequentially in target order.
     * Before each rollout the target's deterministic tool metrics are
     * persisted into @p ods (OdsStore::recordSnapshot under
     * "tool.<target>."), so tool-side and fleet-side telemetry share
     * the one store the rollout health checks read.  The simulated
     * clock carries over between targets, and every decision is
     * deterministic: the outcomes are byte-identical at any --jobs
     * value used for the tuning phase.
     */
    std::vector<FleetRolloutOutcome>
    rolloutAll(const std::vector<TuneTarget> &targets,
               const FleetTuneResult &tuned, const FleetRolloutPlan &plan,
               OdsStore &ods);

  private:
    UskuReport tuneOne(const TuneTarget &target, std::size_t index,
                       ThreadPool *pool);

    FleetOrchestratorOptions options_;
};

} // namespace softsku

#endif // SOFTSKU_CORE_ORCHESTRATOR_HH
