#include "core/knob_registry.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

namespace {

// ---- shared fragments -----------------------------------------------------

bool
hasFarTier(const PlatformSpec &platform)
{
    return platform.farMemory.present;
}

constexpr const char *kNoFarTier = "platform declares no far-memory tier";

std::string
mbaLabel(int percent)
{
    return format("%d%% MB", percent);
}

std::string
tierLabel(TierPolicy policy)
{
    return format("tier %s", tierPolicyName(policy).c_str());
}

std::string
farRatioLabel(double ratio)
{
    return format("%.0f%% far", ratio * 100.0);
}

// ---- the registry ---------------------------------------------------------

std::vector<KnobDescriptor>
buildRegistry()
{
    std::vector<KnobDescriptor> reg;

    {   // 1. core frequency
        KnobDescriptor d;
        d.id = KnobId::CoreFrequency;
        d.key = "core_freq";
        d.displayName = "Core frequency";
        d.domain = [](const PlatformSpec &platform,
                      const WorkloadProfile &profile) {
            std::vector<KnobValue> domain;
            double maxGHz = platform.coreFreqMaxGHz;
            if (profile.usesAvx)
                maxGHz -= 0.2;   // shared core/uncore power budget
            for (double f : platform.coreFrequencySettings()) {
                if (f > maxGHz + 1e-9)
                    continue;
                KnobValue v;
                v.number = f;
                v.label = format("%.1f GHz", f);
                domain.push_back(std::move(v));
            }
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.coreFreqGHz = value.number;
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.number = config.coreFreqGHz;
            v.label = format("%.1f GHz", config.coreFreqGHz);
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            doc.set("core_freq", Json(config.coreFreqGHz));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            config.coreFreqGHz =
                doc.numberOr("core_freq", config.coreFreqGHz);
        };
        d.describeFragment = [](const KnobConfig &config) {
            return format("core=%.1fGHz", config.coreFreqGHz);
        };
        reg.push_back(d);
    }

    {   // 2. uncore frequency
        KnobDescriptor d;
        d.id = KnobId::UncoreFrequency;
        d.key = "uncore_freq";
        d.displayName = "Uncore frequency";
        d.domain = [](const PlatformSpec &platform,
                      const WorkloadProfile &) {
            std::vector<KnobValue> domain;
            for (double f : platform.uncoreFrequencySettings()) {
                KnobValue v;
                v.number = f;
                v.label = format("%.1f GHz", f);
                domain.push_back(std::move(v));
            }
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.uncoreFreqGHz = value.number;
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.number = config.uncoreFreqGHz;
            v.label = format("%.1f GHz", config.uncoreFreqGHz);
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            doc.set("uncore_freq", Json(config.uncoreFreqGHz));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            config.uncoreFreqGHz =
                doc.numberOr("uncore_freq", config.uncoreFreqGHz);
        };
        d.describeFragment = [](const KnobConfig &config) {
            return format("uncore=%.1fGHz", config.uncoreFreqGHz);
        };
        reg.push_back(d);
    }

    {   // 3. active core count
        KnobDescriptor d;
        d.id = KnobId::CoreCount;
        d.key = "core_count";
        d.displayName = "Core count";
        // isolcpus is a boot-loader flag (Sec. 5).
        d.requiresReboot = true;
        d.domain = [](const PlatformSpec &platform,
                      const WorkloadProfile &) {
            std::vector<KnobValue> domain;
            for (int cores = 2; cores < platform.totalCores();
                 cores += 2) {
                KnobValue v;
                v.number = cores;
                v.label = format("%d cores", cores);
                domain.push_back(std::move(v));
            }
            KnobValue v;
            v.number = platform.totalCores();
            v.label = format("%d cores", platform.totalCores());
            domain.push_back(std::move(v));
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.activeCores = static_cast<int>(value.number);
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.number = config.activeCores;
            v.label = config.activeCores <= 0
                          ? "all cores"
                          : format("%d cores", config.activeCores);
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            doc.set("core_count", Json(config.activeCores));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            config.activeCores = static_cast<int>(
                doc.numberOr("core_count", config.activeCores));
        };
        d.describeFragment = [](const KnobConfig &config) {
            return format("cores=%s",
                          config.activeCores <= 0
                              ? "all"
                              : format("%d", config.activeCores).c_str());
        };
        reg.push_back(d);
    }

    {   // 4. CDP LLC code/data ways
        KnobDescriptor d;
        d.id = KnobId::Cdp;
        d.key = "cdp";
        d.displayName = "CDP: LLC code/data ways";
        d.inapplicableReason = [](const PlatformSpec &platform,
                                  const WorkloadProfile &)
            -> const char * {
            if (!platform.supportsRdt)
                return "platform lacks RDT (CAT/CDP)";
            return nullptr;
        };
        d.domain = [](const PlatformSpec &platform,
                      const WorkloadProfile &) {
            std::vector<KnobValue> domain;
            KnobValue off;
            off.label = "CDP off";
            domain.push_back(std::move(off));
            for (int data = 1; data < platform.llc.ways; ++data) {
                int code = platform.llc.ways - data;
                KnobValue v;
                v.cdp = {true, data, code};
                v.label = format("{%dd,%dc}", data, code);
                domain.push_back(std::move(v));
            }
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.cdp = value.cdp;
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.cdp = config.cdp;
            v.label = config.cdp.enabled
                          ? format("{%dd,%dc}", config.cdp.dataWays,
                                   config.cdp.codeWays)
                          : "CDP off";
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            Json cdpDoc = Json::object();
            cdpDoc.set("enabled", Json(config.cdp.enabled));
            cdpDoc.set("data_ways", Json(config.cdp.dataWays));
            cdpDoc.set("code_ways", Json(config.cdp.codeWays));
            doc.set("cdp", std::move(cdpDoc));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            if (!doc.contains("cdp"))
                return;
            const Json &cdpDoc = doc.at("cdp");
            config.cdp.enabled = cdpDoc.boolOr("enabled", false);
            config.cdp.dataWays =
                static_cast<int>(cdpDoc.numberOr("data_ways", 0));
            config.cdp.codeWays =
                static_cast<int>(cdpDoc.numberOr("code_ways", 0));
        };
        d.describeFragment = [](const KnobConfig &config) {
            return format("cdp=%s",
                          config.cdp.enabled
                              ? format("{%dd,%dc}", config.cdp.dataWays,
                                       config.cdp.codeWays)
                                    .c_str()
                              : "off");
        };
        reg.push_back(d);
    }

    {   // 5. hardware prefetchers
        KnobDescriptor d;
        d.id = KnobId::Prefetcher;
        d.key = "prefetcher";
        d.displayName = "Prefetcher";
        d.domain = [](const PlatformSpec &, const WorkloadProfile &) {
            std::vector<KnobValue> domain;
            for (PrefetcherPreset preset : allPrefetcherPresets()) {
                KnobValue v;
                v.prefetch = preset;
                v.label = prefetcherPresetName(preset);
                domain.push_back(std::move(v));
            }
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.prefetch = value.prefetch;
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.prefetch = config.prefetch;
            v.label = prefetcherPresetName(config.prefetch);
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            doc.set("prefetcher",
                    Json(prefetcherPresetKey(config.prefetch)));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            if (doc.contains("prefetcher"))
                config.prefetch = prefetcherPresetFromKey(
                    doc.at("prefetcher").asString());
        };
        d.describeFragment = [](const KnobConfig &config) {
            return format("pf=%s",
                          prefetcherPresetKey(config.prefetch).c_str());
        };
        reg.push_back(d);
    }

    {   // 6. transparent huge pages
        KnobDescriptor d;
        d.id = KnobId::Thp;
        d.key = "thp";
        d.displayName = "Transparent huge pages";
        d.domain = [](const PlatformSpec &, const WorkloadProfile &) {
            std::vector<KnobValue> domain;
            for (ThpMode mode :
                 {ThpMode::Madvise, ThpMode::Always, ThpMode::Never}) {
                KnobValue v;
                v.thp = mode;
                v.label = "THP " + thpModeName(mode);
                domain.push_back(std::move(v));
            }
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.thp = value.thp;
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.thp = config.thp;
            v.label = "THP " + thpModeName(config.thp);
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            doc.set("thp", Json(thpModeName(config.thp)));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            if (doc.contains("thp"))
                config.thp = thpModeFromString(doc.at("thp").asString());
        };
        d.describeFragment = [](const KnobConfig &config) {
            return format("thp=%s", thpModeName(config.thp).c_str());
        };
        reg.push_back(d);
    }

    {   // 7. static huge pages
        KnobDescriptor d;
        d.id = KnobId::Shp;
        d.key = "shp";
        d.displayName = "Static huge pages";
        // SHP reservations are boot-time kernel parameters.
        d.requiresReboot = true;
        d.inapplicableReason = [](const PlatformSpec &,
                                  const WorkloadProfile &profile)
            -> const char * {
            if (!profile.usesShp)
                return "service does not use the SHP allocation APIs";
            return nullptr;
        };
        d.domain = [](const PlatformSpec &, const WorkloadProfile &) {
            std::vector<KnobValue> domain;
            for (int count = 0; count <= 600; count += 100) {
                KnobValue v;
                v.number = count;
                v.label = format("%d SHPs", count);
                domain.push_back(std::move(v));
            }
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.shpCount = static_cast<int>(value.number);
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.number = config.shpCount;
            v.label = format("%d SHPs", config.shpCount);
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            doc.set("shp", Json(config.shpCount));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            config.shpCount = static_cast<int>(
                doc.numberOr("shp", config.shpCount));
        };
        d.describeFragment = [](const KnobConfig &config) {
            return format("shp=%d", config.shpCount);
        };
        reg.push_back(d);
    }

    {   // 8. memory-bandwidth throttle (resctrl MBA)
        KnobDescriptor d;
        d.id = KnobId::Mba;
        d.key = "mba";
        d.displayName = "Memory-bandwidth throttle (MBA)";
        d.availableOn = hasFarTier;
        d.unavailableReason = kNoFarTier;
        d.domain = [](const PlatformSpec &, const WorkloadProfile &) {
            std::vector<KnobValue> domain;
            for (int percent : {100, 90, 70, 50, 30}) {
                KnobValue v;
                v.number = percent;
                v.label = mbaLabel(percent);
                domain.push_back(std::move(v));
            }
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.mbaPercent = static_cast<int>(value.number);
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.number = config.mbaPercent;
            v.label = mbaLabel(config.mbaPercent);
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            if (config.mbaPercent != 100)
                doc.set("mba", Json(config.mbaPercent));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            config.mbaPercent = static_cast<int>(
                doc.numberOr("mba", config.mbaPercent));
        };
        d.describeFragment = [](const KnobConfig &config) {
            if (config.mbaPercent == 100)
                return std::string();
            return format("mba=%d", config.mbaPercent);
        };
        reg.push_back(d);
    }

    {   // 9. far-tier promotion policy
        KnobDescriptor d;
        d.id = KnobId::TierPolicyKnob;
        d.key = "tier_policy";
        d.displayName = "Far-memory promotion policy";
        d.availableOn = hasFarTier;
        d.unavailableReason = kNoFarTier;
        d.domain = [](const PlatformSpec &, const WorkloadProfile &) {
            std::vector<KnobValue> domain;
            for (TierPolicy policy : allTierPolicies()) {
                KnobValue v;
                v.tier = policy;
                v.label = tierLabel(policy);
                domain.push_back(std::move(v));
            }
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.tierPolicy = value.tier;
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.tier = config.tierPolicy;
            v.label = tierLabel(config.tierPolicy);
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            if (config.tierPolicy != TierPolicy::Static)
                doc.set("tier_policy",
                        Json(tierPolicyName(config.tierPolicy)));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            if (doc.contains("tier_policy"))
                config.tierPolicy = tierPolicyFromString(
                    doc.at("tier_policy").asString());
        };
        d.describeFragment = [](const KnobConfig &config) {
            if (config.tierPolicy == TierPolicy::Static)
                return std::string();
            return format("tier=%s",
                          tierPolicyName(config.tierPolicy).c_str());
        };
        reg.push_back(d);
    }

    {   // 10. far-memory placement ratio
        KnobDescriptor d;
        d.id = KnobId::FarMemRatio;
        d.key = "far_mem_ratio";
        d.displayName = "Far-memory placement ratio";
        d.availableOn = hasFarTier;
        d.unavailableReason = kNoFarTier;
        d.domain = [](const PlatformSpec &, const WorkloadProfile &) {
            std::vector<KnobValue> domain;
            for (double ratio : {0.0, 0.10, 0.25, 0.40, 0.60}) {
                KnobValue v;
                v.number = ratio;
                v.label = farRatioLabel(ratio);
                domain.push_back(std::move(v));
            }
            return domain;
        };
        d.apply = [](const KnobValue &value, KnobConfig &config) {
            config.farMemRatio = value.number;
        };
        d.capture = [](const KnobConfig &config) {
            KnobValue v;
            v.number = config.farMemRatio;
            v.label = farRatioLabel(config.farMemRatio);
            return v;
        };
        d.writeJson = [](const KnobConfig &config, Json &doc) {
            if (config.farMemRatio != 0.0)
                doc.set("far_mem_ratio", Json(config.farMemRatio));
        };
        d.readJson = [](const Json &doc, KnobConfig &config) {
            config.farMemRatio =
                doc.numberOr("far_mem_ratio", config.farMemRatio);
        };
        d.describeFragment = [](const KnobConfig &config) {
            if (config.farMemRatio == 0.0)
                return std::string();
            return format("far=%.2f", config.farMemRatio);
        };
        reg.push_back(d);
    }

    return reg;
}

} // namespace

const std::vector<KnobDescriptor> &
knobRegistry()
{
    static const std::vector<KnobDescriptor> registry = buildRegistry();
    return registry;
}

const KnobDescriptor &
knobDescriptor(KnobId id)
{
    for (const KnobDescriptor &d : knobRegistry()) {
        if (d.id == id)
            return d;
    }
    panic("knob id %d has no registered descriptor",
          static_cast<int>(id));
}

const KnobDescriptor *
findKnobDescriptor(const std::string &key)
{
    for (const KnobDescriptor &d : knobRegistry()) {
        if (key == d.key)
            return &d;
    }
    return nullptr;
}

std::string
knobKeyList()
{
    std::string keys;
    for (const KnobDescriptor &d : knobRegistry()) {
        if (!keys.empty())
            keys += ", ";
        keys += d.key;
    }
    return keys;
}

} // namespace softsku
