/**
 * @file
 * The soft-SKU design space: candidate values per knob, and the
 * applicability rules the paper's input file encodes (Sec. 4-5).
 *
 * Applicability: SHP is skipped for services that never call the
 * hugetlbfs APIs (Ads1); knobs that require a reboot (core count, SHP)
 * are skipped for services that cannot tolerate reboots on live
 * traffic; CDP requires RDT-capable hardware.
 */

#ifndef SOFTSKU_CORE_DESIGN_SPACE_HH
#define SOFTSKU_CORE_DESIGN_SPACE_HH

#include <string>
#include <vector>

#include "core/knobs.hh"
#include "workload/profile.hh"

namespace softsku {

/** One candidate setting of one knob. */
struct KnobValue
{
    KnobId id = KnobId::CoreFrequency;
    std::string label;                   //!< e.g. "2.0 GHz", "{6d,5c}"

    double number = 0.0;                 //!< frequency (GHz) or count
    CdpSetting cdp;
    PrefetcherPreset prefetch = PrefetcherPreset::AllOn;
    ThpMode thp = ThpMode::Madvise;
    TierPolicy tier = TierPolicy::Static;

    /** Overwrite this knob's field in @p config (descriptor hook). */
    void applyTo(KnobConfig &config) const;

    /** The value @p config currently holds for knob @p id. */
    static KnobValue fromConfig(KnobId id, const KnobConfig &config);

    bool operator==(const KnobValue &) const = default;
};

/**
 * True when μSKU may sweep @p id for this service on this platform
 * (the configurator's filtering step).  The shared reboot gate and the
 * per-knob rules both come from the descriptor registry.  @p reason
 * receives a short explanation when the knob is skipped.
 */
bool knobApplicable(KnobId id, const PlatformSpec &platform,
                    const WorkloadProfile &profile,
                    std::string *reason = nullptr);

/**
 * Candidate values for @p id from the descriptor's axis generator,
 * mirroring the paper's sweeps: core frequency 1.6→max (AVX cap
 * applies), uncore 1.4→1.8, core count 2→platform max, CDP off plus
 * every {data, code} split, the five prefetcher presets, three THP
 * modes, SHP 0→600 by 100 — plus the memory-tier axes (MB throttle
 * percentages, the four tier policies, far-placement ratios).
 */
std::vector<KnobValue> knobDomain(KnobId id, const PlatformSpec &platform,
                                  const WorkloadProfile &profile);

} // namespace softsku

#endif // SOFTSKU_CORE_DESIGN_SPACE_HH
