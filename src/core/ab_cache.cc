#include "core/ab_cache.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

namespace {

/** FNV-1a, the same stable hash the sweep's stream ids use. */
std::uint64_t
fnv64(const std::string &text)
{
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

} // namespace

std::string
hexBits(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return format("0x%016llx", static_cast<unsigned long long>(bits));
}

bool
bitsFromHex(const std::string &text, double &out)
{
    if (text.size() != 18 || text[0] != '0' || text[1] != 'x')
        return false;
    std::uint64_t bits = 0;
    for (size_t i = 2; i < text.size(); ++i) {
        char c = text[i];
        std::uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        bits = (bits << 4) | digit;
    }
    std::memcpy(&out, &bits, sizeof(out));
    return true;
}

namespace {

Json
statToJson(const RunningStat &stat)
{
    RunningStat::State s = stat.state();
    Json doc = Json::object();
    doc.set("count", Json(static_cast<long long>(s.count)));
    doc.set("mean", Json(hexBits(s.mean)));
    doc.set("m2", Json(hexBits(s.m2)));
    doc.set("min", Json(hexBits(s.min)));
    doc.set("max", Json(hexBits(s.max)));
    return doc;
}

bool
statFromJson(const Json &doc, RunningStat &out)
{
    if (!doc.isObject())
        return false;
    RunningStat::State s;
    s.count = static_cast<std::uint64_t>(doc.at("count").asInt());
    if (!bitsFromHex(doc.at("mean").asString(), s.mean) ||
        !bitsFromHex(doc.at("m2").asString(), s.m2) ||
        !bitsFromHex(doc.at("min").asString(), s.min) ||
        !bitsFromHex(doc.at("max").asString(), s.max))
        return false;
    out = RunningStat::fromState(s);
    return true;
}

Json
resultToJson(const ABTestResult &result)
{
    Json doc = Json::object();
    doc.set("config_a", result.configA.toJson());
    doc.set("config_b", result.configB.toJson());
    doc.set("samples_a", statToJson(result.samplesA));
    doc.set("samples_b", statToJson(result.samplesB));
    doc.set("paired_diffs", statToJson(result.pairedDiffs));
    Json welch = Json::object();
    welch.set("t", Json(hexBits(result.welch.tStatistic)));
    welch.set("dof", Json(hexBits(result.welch.dof)));
    welch.set("p", Json(hexBits(result.welch.pValue)));
    welch.set("mean_diff", Json(hexBits(result.welch.meanDiff)));
    welch.set("half_width", Json(hexBits(result.welch.diffHalfWidth)));
    welch.set("significant", Json(result.welch.significant));
    doc.set("welch", std::move(welch));
    doc.set("samples_used",
            Json(static_cast<long long>(result.samplesUsed)));
    doc.set("samples_accepted",
            Json(static_cast<long long>(result.samplesAccepted)));
    doc.set("significant", Json(result.significant));
    doc.set("elapsed_sec", Json(hexBits(result.elapsedSec)));
    Json faults = Json::object();
    faults.set("dropped",
               Json(static_cast<long long>(result.faults.samplesDropped)));
    faults.set("corrupted", Json(static_cast<long long>(
                                result.faults.samplesCorrupted)));
    faults.set("rejected", Json(static_cast<long long>(
                               result.faults.samplesRejected)));
    faults.set("crashes",
               Json(static_cast<long long>(result.faults.crashes)));
    faults.set("apply_failures", Json(static_cast<long long>(
                                     result.faults.applyFailures)));
    faults.set("retries",
               Json(static_cast<long long>(result.faults.retries)));
    faults.set("guardrail_aborts", Json(static_cast<long long>(
                                       result.faults.guardrailAborts)));
    faults.set("abandoned",
               Json(static_cast<long long>(result.faults.abandoned)));
    doc.set("faults", std::move(faults));
    doc.set("crashed", Json(result.crashed));
    doc.set("apply_failed", Json(result.applyFailed));
    doc.set("qos_aborted", Json(result.qosAborted));
    return doc;
}

bool
resultFromJson(const Json &doc, ABTestResult &out)
{
    if (!doc.isObject() || !doc.contains("welch") ||
        !doc.contains("faults"))
        return false;
    out.configA = KnobConfig::fromJson(doc.at("config_a"));
    out.configB = KnobConfig::fromJson(doc.at("config_b"));
    if (!statFromJson(doc.at("samples_a"), out.samplesA) ||
        !statFromJson(doc.at("samples_b"), out.samplesB) ||
        !statFromJson(doc.at("paired_diffs"), out.pairedDiffs))
        return false;
    const Json &welch = doc.at("welch");
    if (!bitsFromHex(welch.at("t").asString(), out.welch.tStatistic) ||
        !bitsFromHex(welch.at("dof").asString(), out.welch.dof) ||
        !bitsFromHex(welch.at("p").asString(), out.welch.pValue) ||
        !bitsFromHex(welch.at("mean_diff").asString(),
                     out.welch.meanDiff) ||
        !bitsFromHex(welch.at("half_width").asString(),
                     out.welch.diffHalfWidth))
        return false;
    out.welch.significant = welch.at("significant").asBool();
    out.samplesUsed =
        static_cast<std::uint64_t>(doc.at("samples_used").asInt());
    out.samplesAccepted =
        static_cast<std::uint64_t>(doc.at("samples_accepted").asInt());
    out.significant = doc.at("significant").asBool();
    if (!bitsFromHex(doc.at("elapsed_sec").asString(), out.elapsedSec))
        return false;
    const Json &faults = doc.at("faults");
    out.faults.samplesDropped =
        static_cast<std::uint64_t>(faults.at("dropped").asInt());
    out.faults.samplesCorrupted =
        static_cast<std::uint64_t>(faults.at("corrupted").asInt());
    out.faults.samplesRejected =
        static_cast<std::uint64_t>(faults.at("rejected").asInt());
    out.faults.crashes =
        static_cast<std::uint64_t>(faults.at("crashes").asInt());
    out.faults.applyFailures =
        static_cast<std::uint64_t>(faults.at("apply_failures").asInt());
    out.faults.retries =
        static_cast<std::uint64_t>(faults.at("retries").asInt());
    out.faults.guardrailAborts =
        static_cast<std::uint64_t>(faults.at("guardrail_aborts").asInt());
    out.faults.abandoned =
        static_cast<std::uint64_t>(faults.at("abandoned").asInt());
    out.crashed = doc.at("crashed").asBool();
    out.applyFailed = doc.at("apply_failed").asBool();
    out.qosAborted = doc.at("qos_aborted").asBool();
    return true;
}

Json
chunkToJson(const ValidationChunk &chunk)
{
    Json doc = Json::object();
    doc.set("diffs", statToJson(chunk.diffs));
    doc.set("ref", statToJson(chunk.refStat));
    Json points = Json::array();
    for (const auto &point : chunk.points) {
        Json triple = Json::array();
        triple.push(Json(hexBits(point[0])));
        triple.push(Json(hexBits(point[1])));
        triple.push(Json(hexBits(point[2])));
        points.push(std::move(triple));
    }
    doc.set("points", std::move(points));
    doc.set("samples", Json(static_cast<long long>(chunk.samples)));
    doc.set("dropped", Json(static_cast<long long>(chunk.dropped)));
    doc.set("rejected", Json(static_cast<long long>(chunk.rejected)));
    return doc;
}

bool
chunkFromJson(const Json &doc, ValidationChunk &out)
{
    if (!doc.isObject() || !doc.contains("points"))
        return false;
    if (!statFromJson(doc.at("diffs"), out.diffs) ||
        !statFromJson(doc.at("ref"), out.refStat))
        return false;
    for (const Json &triple : doc.at("points").elements()) {
        const auto &parts = triple.elements();
        if (parts.size() != 3)
            return false;
        std::array<double, 3> point{};
        for (size_t i = 0; i < 3; ++i)
            if (!bitsFromHex(parts[i].asString(), point[i]))
                return false;
        out.points.push_back(point);
    }
    out.samples = static_cast<std::uint64_t>(doc.at("samples").asInt());
    out.dropped = static_cast<std::uint64_t>(doc.at("dropped").asInt());
    out.rejected =
        static_cast<std::uint64_t>(doc.at("rejected").asInt());
    return true;
}

} // namespace

std::string
abCacheContext(const ProductionEnvironment &env, const InputSpec &spec,
               const RobustnessPolicy &robust)
{
    // Everything a comparison's outcome depends on besides its key.
    // Doubles print as bit patterns: a context is equal iff the runs
    // are bit-for-bit interchangeable.
    const SimOptions &sim = env.simOptions();
    const EnvironmentNoise &noise = env.noise();
    const FaultPlan &plan = env.faults();
    std::string out;
    out += format("schema=%d", kAbCacheSchemaVersion);
    out += format(" service=%s platform=%s seed=%llu",
                  env.profile().name.c_str(),
                  env.platform().name.c_str(),
                  static_cast<unsigned long long>(env.seed()));
    out += format(" sim=%llu/%llu/%llu/%d/%d/%d",
                  static_cast<unsigned long long>(sim.warmupInstructions),
                  static_cast<unsigned long long>(
                      sim.measureInstructions),
                  static_cast<unsigned long long>(sim.seed), sim.catWays,
                  sim.llcLru ? 1 : 0, sim.disableInterference ? 1 : 0);
    out += format(" noise=%s/%s/%s/%s",
                  hexBits(noise.diurnalAmplitude).c_str(),
                  hexBits(noise.measurementSigma).c_str(),
                  hexBits(noise.codePushSigma).c_str(),
                  hexBits(noise.codePushIntervalSec).c_str());
    out += format(" stats=%s/%llu/%llu/%llu/%s",
                  hexBits(spec.confidence).c_str(),
                  static_cast<unsigned long long>(spec.maxSamplesPerTest),
                  static_cast<unsigned long long>(spec.minSamplesPerTest),
                  static_cast<unsigned long long>(spec.warmupSamples),
                  hexBits(spec.sampleSpacingSec).c_str());
    out += format(" robust=%d/%d/%s/%d/%s/%s", robust.maxRetries,
                  robust.robustFilter ? 1 : 0,
                  hexBits(robust.madCutoff).c_str(),
                  robust.qosGuardrail ? 1 : 0,
                  hexBits(robust.qosMarginFraction).c_str(),
                  hexBits(robust.minPeakQpsFraction).c_str());
    out += format(" faults=%s/%s/%s/%s/%s/%s/%s/%s/%s/%s/%s seed=%llu",
                  hexBits(plan.crashPerHour).c_str(),
                  hexBits(plan.sampleDropRate).c_str(),
                  hexBits(plan.sampleCorruptRate).c_str(),
                  hexBits(plan.corruptSpikeFactor).c_str(),
                  hexBits(plan.surgeWindowRate).c_str(),
                  hexBits(plan.surgeMagnitude).c_str(),
                  hexBits(plan.surgeWindowSec).c_str(),
                  hexBits(plan.configApplyFailRate).c_str(),
                  hexBits(plan.stuckRebootRate).c_str(),
                  hexBits(plan.stuckRebootExtraSec).c_str(),
                  hexBits(plan.replacementPerfMin).c_str(),
                  static_cast<unsigned long long>(env.faultSeed()));
    // Adaptive-search runs key their entries by chunk, so their files
    // must never mix with fixed-budget files.  Appended only when
    // active: fixed-mode contexts keep their historical spelling.
    if (spec.search != SearchMode::Fixed) {
        out += format(" search=%s/%llu",
                      searchModeName(spec.search).c_str(),
                      static_cast<unsigned long long>(
                          spec.raceChunkSamples));
    }
    return out;
}

std::string
abCacheFilePath(const std::string &dir, const std::string &context)
{
    return dir +
           format("/abcache-%016llx.json",
                  static_cast<unsigned long long>(fnv64(context)));
}

std::size_t
loadAbCache(const std::string &dir, const std::string &context,
            std::unordered_map<std::string, ABTestResult> &into,
            ValidationCache *validation)
{
    const std::string path = abCacheFilePath(dir, context);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0;  // clean miss: nothing persisted for this context yet
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::string error;
    auto [doc, ok] = Json::parse(buffer.str(), &error);
    if (!ok || !doc.isObject()) {
        warn("ab cache: ignoring malformed %s (%s)", path.c_str(),
             error.c_str());
        return 0;
    }
    if (!doc.contains("schema_version") ||
        doc.at("schema_version").asInt() != kAbCacheSchemaVersion) {
        warn("ab cache: ignoring %s (schema mismatch)", path.c_str());
        return 0;
    }
    // The full context is verified verbatim: the filename hash only
    // routes; it never authorizes a replay.
    if (doc.stringOr("context", "") != context) {
        warn("ab cache: ignoring %s (context mismatch)", path.c_str());
        return 0;
    }
    if (!doc.contains("entries") || !doc.at("entries").isObject()) {
        warn("ab cache: ignoring %s (no entries)", path.c_str());
        return 0;
    }
    std::size_t added = 0;
    for (const auto &[key, value] : doc.at("entries").members()) {
        if (into.count(key))
            continue;
        ABTestResult result;
        if (!resultFromJson(value, result)) {
            warn("ab cache: skipping malformed entry '%s' in %s",
                 key.c_str(), path.c_str());
            continue;
        }
        into.emplace(key, std::move(result));
        ++added;
    }
    if (validation && doc.contains("validation") &&
        doc.at("validation").isObject()) {
        for (const auto &[key, value] : doc.at("validation").members()) {
            if (validation->count(key))
                continue;
            ValidationChunk chunk;
            if (!chunkFromJson(value, chunk)) {
                warn("ab cache: skipping malformed validation chunk "
                     "'%s' in %s", key.c_str(), path.c_str());
                continue;
            }
            validation->emplace(key, std::move(chunk));
        }
    }
    return added;
}

bool
storeAbCache(const std::string &dir, const std::string &context,
             const std::unordered_map<std::string, ABTestResult> &memo,
             const ValidationCache *validation)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("ab cache: cannot create %s (%s)", dir.c_str(),
             ec.message().c_str());
        return false;
    }

    // Sorted keys: the file bytes are a pure function of the contents.
    std::vector<const std::string *> keys;
    keys.reserve(memo.size());
    for (const auto &[key, result] : memo)
        keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const std::string *a, const std::string *b) {
                  return *a < *b;
              });

    Json entries = Json::object();
    for (const std::string *key : keys)
        entries.set(*key, resultToJson(memo.at(*key)));
    Json doc = Json::object();
    doc.set("schema_version", Json(kAbCacheSchemaVersion));
    doc.set("context", Json(context));
    doc.set("entries", std::move(entries));
    if (validation && !validation->empty()) {
        std::vector<const std::string *> chunkKeys;
        chunkKeys.reserve(validation->size());
        for (const auto &[key, chunk] : *validation)
            chunkKeys.push_back(&key);
        std::sort(chunkKeys.begin(), chunkKeys.end(),
                  [](const std::string *a, const std::string *b) {
                      return *a < *b;
                  });
        Json chunks = Json::object();
        for (const std::string *key : chunkKeys)
            chunks.set(*key, chunkToJson(validation->at(*key)));
        doc.set("validation", std::move(chunks));
    }

    const std::string path = abCacheFilePath(dir, context);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("ab cache: cannot write %s", path.c_str());
        return false;
    }
    out << doc.dump(1) << '\n';
    return static_cast<bool>(out);
}

} // namespace softsku
