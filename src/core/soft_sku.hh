/**
 * @file
 * The soft-SKU generator (paper Sec. 4): compose the most performant
 * knob settings from the design-space map into one configuration, then
 * validate it on live servers for a prolonged period — across diurnal
 * load and code pushes — by comparing fleet throughput against the
 * reference configuration through the ODS telemetry store.
 */

#ifndef SOFTSKU_CORE_SOFT_SKU_HH
#define SOFTSKU_CORE_SOFT_SKU_HH

#include "core/design_space_map.hh"
#include "obs/metrics.hh"
#include "sim/production_env.hh"
#include "telemetry/ods.hh"
#include "util/thread_pool.hh"

namespace softsku {

/** Outcome of the prolonged deployment validation. */
struct ValidationResult
{
    double durationSec = 0.0;
    std::uint64_t samples = 0;
    double meanGainPercent = 0.0;   //!< QPS gain over the reference
    double gainCiPercent = 0.0;
    bool stable = false;            //!< gain significant and positive
    /** Telemetry pairs lost to EMON dropout (fault injection). */
    std::uint64_t samplesDropped = 0;
    /** Corrupted pairs rejected by robust filtering before the test. */
    std::uint64_t samplesRejected = 0;
};

/** Composes and validates soft SKUs. */
class SoftSkuGenerator
{
  public:
    /**
     * Select the most performant setting for every explored knob and
     * apply them on top of the baseline configuration.
     */
    KnobConfig compose(const DesignSpaceMap &map) const;

    /**
     * Deploy @p softSku next to @p reference for @p durationSec of
     * simulated wall clock, logging fleet QPS for both into @p ods
     * (series "qps.softsku" and "qps.reference"), and judge stability.
     *
     * The window is split into fixed-size chunks, each measured in its
     * own deterministic ProductionEnvironment substream and merged in
     * chunk order (RunningStat::merge), so the result is bit-identical
     * whether the chunks run serially or on @p pool.
     *
     * @param sampleEverySec telemetry cadence
     * @param pool           optional worker pool for the chunks
     * @param metrics        optional registry receiving validation
     *                       sample counters (bumped in the serial merge
     *                       loop, so they are thread-count-invariant)
     */
    ValidationResult validate(ProductionEnvironment &env,
                              const KnobConfig &softSku,
                              const KnobConfig &reference,
                              double durationSec, OdsStore &ods,
                              double sampleEverySec = 60.0,
                              ThreadPool *pool = nullptr,
                              MetricsRegistry *metrics = nullptr) const;
};

} // namespace softsku

#endif // SOFTSKU_CORE_SOFT_SKU_HH
