/**
 * @file
 * The soft-SKU generator (paper Sec. 4): compose the most performant
 * knob settings from the design-space map into one configuration, then
 * validate it on live servers for a prolonged period — across diurnal
 * load and code pushes — by comparing fleet throughput against the
 * reference configuration through the ODS telemetry store.
 */

#ifndef SOFTSKU_CORE_SOFT_SKU_HH
#define SOFTSKU_CORE_SOFT_SKU_HH

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/design_space_map.hh"
#include "obs/metrics.hh"
#include "sim/production_env.hh"
#include "telemetry/ods.hh"
#include "util/thread_pool.hh"

namespace softsku {

/** Outcome of the prolonged deployment validation. */
struct ValidationResult
{
    double durationSec = 0.0;
    std::uint64_t samples = 0;
    double meanGainPercent = 0.0;   //!< QPS gain over the reference
    double gainCiPercent = 0.0;
    bool stable = false;            //!< gain significant and positive
    /** Telemetry pairs lost to EMON dropout (fault injection). */
    std::uint64_t samplesDropped = 0;
    /** Corrupted pairs rejected by robust filtering before the test. */
    std::uint64_t samplesRejected = 0;
};

/**
 * What one validation chunk measured.  Public (rather than a detail of
 * validate()) because chunks are the persistence unit of the A/B
 * cache's validation section: a warm run replays these — statistics,
 * ODS points, and fault tallies alike — instead of re-simulating ~8%
 * of its wall clock, and merges them in the same chunk order, so warm
 * and cold reports are byte-identical.
 */
struct ValidationChunk
{
    RunningStat diffs;
    RunningStat refStat;
    /** (time, refMips, skuMips) in sample order, for the ODS replay. */
    std::vector<std::array<double, 3>> points;
    std::uint64_t samples = 0;
    std::uint64_t dropped = 0;
    std::uint64_t rejected = 0;
};

/** Chunk key → measured chunk; shared across runs via the A/B cache. */
using ValidationCache = std::unordered_map<std::string, ValidationChunk>;

/**
 * The memo key of validation chunk @p chunk for @p softSku vs
 * @p reference.  Canonical configs plus the window parameters: two
 * validations may share a chunk iff every input of its measurement is
 * identical (the environment context is checked separately, by the
 * cache file's context string).
 */
std::string validationChunkKey(const PlatformSpec &platform,
                               const KnobConfig &softSku,
                               const KnobConfig &reference,
                               double durationSec, double sampleEverySec,
                               std::uint64_t chunk);

/** Composes and validates soft SKUs. */
class SoftSkuGenerator
{
  public:
    /**
     * Select the most performant setting for every explored knob and
     * apply them on top of the baseline configuration.
     */
    KnobConfig compose(const DesignSpaceMap &map) const;

    /**
     * Deploy @p softSku next to @p reference for @p durationSec of
     * simulated wall clock, logging fleet QPS for both into @p ods
     * (series "qps.softsku" and "qps.reference"), and judge stability.
     *
     * The window is split into fixed-size chunks, each measured in its
     * own deterministic ProductionEnvironment substream and merged in
     * chunk order (RunningStat::merge), so the result is bit-identical
     * whether the chunks run serially or on @p pool.
     *
     * @param sampleEverySec telemetry cadence
     * @param pool           optional worker pool for the chunks
     * @param metrics        optional registry receiving validation
     *                       sample counters (bumped in the serial merge
     *                       loop, so they are thread-count-invariant)
     * @param cache          optional chunk memo: hits replay instead of
     *                       simulating; misses are measured and added.
     *                       The caller owns context discipline (see
     *                       ab_cache.hh) — entries are only valid under
     *                       the environment they were measured in.
     */
    ValidationResult validate(ProductionEnvironment &env,
                              const KnobConfig &softSku,
                              const KnobConfig &reference,
                              double durationSec, OdsStore &ods,
                              double sampleEverySec = 60.0,
                              ThreadPool *pool = nullptr,
                              MetricsRegistry *metrics = nullptr,
                              ValidationCache *cache = nullptr) const;
};

} // namespace softsku

#endif // SOFTSKU_CORE_SOFT_SKU_HH
