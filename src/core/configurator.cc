#include "core/configurator.hh"

#include "util/logging.hh"

namespace softsku {

size_t
TestPlan::totalCandidates() const
{
    size_t total = 0;
    for (const KnobPlan &plan : knobs)
        total += plan.values.size();
    return total;
}

TestPlan
buildTestPlan(const InputSpec &spec, const PlatformSpec &platform,
              const WorkloadProfile &profile)
{
    if (!profile.mipsValidMetric) {
        fatal("μSKU: MIPS is not a valid throughput proxy for '%s' "
              "(performance-introspective code paths); extend μSKU with "
              "a service-specific metric before tuning it",
              profile.name.c_str());
    }

    TestPlan plan;
    for (KnobId id : spec.knobs) {
        std::string reason;
        if (!knobApplicable(id, platform, profile, &reason)) {
            plan.skipped.push_back({id, reason});
            inform("μSKU: skipping knob '%s' for %s: %s",
                   knobKey(id).c_str(), profile.name.c_str(),
                   reason.c_str());
            continue;
        }
        KnobPlan knobPlan;
        knobPlan.id = id;
        knobPlan.values = knobDomain(id, platform, profile);
        plan.knobs.push_back(std::move(knobPlan));
    }
    return plan;
}

} // namespace softsku
