#include "core/orchestrator.hh"

#include <chrono>
#include <thread>

#include "services/services.hh"
#include "telemetry/health_view.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

TuneTarget
TuneTarget::of(const std::string &service, const std::string &platform,
               const SimOptions &simOpts)
{
    TuneTarget target;
    target.spec.microservice = service;
    target.spec.platform = platform;
    target.simOpts = simOpts;
    return target;
}

std::string
TuneTarget::name() const
{
    return toLower(spec.microservice) + ":" + spec.platform;
}

std::vector<TuneTarget>
TuneTarget::parseList(const std::string &list, const SimOptions &simOpts)
{
    std::vector<TuneTarget> targets;
    for (const std::string &entry : split(list, ',')) {
        std::string item(trim(entry));
        if (item.empty())
            continue;
        size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == item.size()) {
            fatal("malformed target '%s' (expected service:platform)",
                  item.c_str());
        }
        targets.push_back(of(item.substr(0, colon),
                             item.substr(colon + 1), simOpts));
    }
    if (targets.empty())
        fatal("no tuning targets given");
    return targets;
}

FleetOrchestratorOptions
FleetOrchestratorOptions::fromTool(const ToolOptions &tool)
{
    FleetOrchestratorOptions options;
    options.jobs = tool.jobs;
    options.faults = tool.faults;
    options.faultSeed = tool.faultSeed;
    options.cacheDir = tool.cacheDir;
    options.search = tool.search;
    options.confidence = tool.confidence;
    options.progress = tool.progress;
    return options;
}

std::uint64_t
FleetTuneResult::totalComparisons() const
{
    std::uint64_t total = 0;
    for (const UskuReport &report : reports)
        total += report.abComparisons;
    return total;
}

std::uint64_t
FleetTuneResult::totalCacheHits() const
{
    std::uint64_t total = 0;
    for (const UskuReport &report : reports)
        total += report.cacheHits;
    return total;
}

Json
FleetRolloutOutcome::toJson() const
{
    Json doc = Json::object();
    doc.set("target", Json(target));
    doc.set("tuned_gain_percent", Json(tunedGainPercent));
    doc.set("rollout", rollout.toJson());
    if (!health.isNull())
        doc.set("health", health);
    return doc;
}

FleetOrchestrator::FleetOrchestrator(FleetOrchestratorOptions options)
    : options_(std::move(options))
{
}

UskuReport
FleetOrchestrator::tuneOne(const TuneTarget &target, std::size_t index,
                           ThreadPool *pool)
{
    const WorkloadProfile &service =
        serviceByName(target.spec.microservice);
    const PlatformSpec &platform = platformByName(target.spec.platform);
    ProductionEnvironment env(service, platform, target.spec.seed,
                              target.simOpts);

    // Fleet-level search overrides land on a spec copy; the target's
    // own spec stays what the operator registered.
    InputSpec spec = target.spec;
    ToolOptions overrides;
    overrides.search = options_.search;
    overrides.confidence = options_.confidence;
    spec.applySearchOverrides(overrides);

    UskuOptions options;
    options.pool = pool;
    options.jobs = 1;  // no private pool; inline when pool is null
    options.robustness = options_.robustness;
    options.faults = options_.faults;
    options.faultSeed = options_.faultSeed;
    options.cacheDir = options_.cacheDir;
    options.progress = options_.progress && pool == nullptr;
    // Distinct per-target trace tags keep concurrent runs' span paths
    // disjoint — and identical between sequential and pooled mode, so
    // the deterministic trace summary is orchestration-invariant too.
    options.traceTag = static_cast<std::uint64_t>(index) + 1;

    Usku tool(env, options);
    return tool.run(spec);
}

FleetTuneResult
FleetOrchestrator::tuneAll(const std::vector<TuneTarget> &targets)
{
    FleetTuneResult result;
    result.reports.resize(targets.size());
    auto t0 = std::chrono::steady_clock::now();

    if (options_.jobs == 1 || targets.size() <= 1) {
        // Sequential: no pool.  With one target a pool would only add
        // scheduling overhead around the same work.
        std::unique_ptr<ThreadPool> pool;
        if (options_.jobs != 1)
            pool = std::make_unique<ThreadPool>(options_.jobs);
        for (std::size_t i = 0; i < targets.size(); ++i) {
            inform("tuning %s (%zu/%zu)", targets[i].name().c_str(),
                   i + 1, targets.size());
            result.reports[i] = tuneOne(targets[i], i, pool.get());
        }
    } else {
        // One driver thread per target, one shared pool under all of
        // them.  Drivers do the serial work (batch planning, commit
        // loops, chunk merges) and park in parallelFor while their
        // tasks run; a target draining into validation leaves the
        // workers to the other targets instead of idling them.
        ThreadPool pool(options_.jobs);
        inform("tuning %zu targets on one %u-worker pool",
               targets.size(), pool.threadCount());
        std::vector<std::thread> drivers;
        drivers.reserve(targets.size());
        for (std::size_t i = 0; i < targets.size(); ++i) {
            drivers.emplace_back([this, &targets, &result, &pool, i] {
                result.reports[i] = tuneOne(targets[i], i, &pool);
            });
        }
        for (std::thread &driver : drivers)
            driver.join();
    }

    result.wallSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return result;
}

std::vector<FleetRolloutOutcome>
FleetOrchestrator::rolloutAll(const std::vector<TuneTarget> &targets,
                              const FleetTuneResult &tuned,
                              const FleetRolloutPlan &plan, OdsStore &ods)
{
    SOFTSKU_ASSERT(targets.size() == tuned.reports.size());
    std::vector<FleetRolloutOutcome> outcomes;
    outcomes.reserve(targets.size());
    // One simulated clock across all targets: target i+1's rollout
    // starts where target i's finished, like an operator working
    // through a deployment queue.
    double clock = 0.0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const TuneTarget &target = targets[i];
        const UskuReport &report = tuned.reports[i];
        const WorkloadProfile &service =
            serviceByName(target.spec.microservice);
        const PlatformSpec &platform =
            platformByName(target.spec.platform);
        ProductionEnvironment env(service, platform, target.spec.seed,
                                  target.simOpts);
        if (options_.faults.any())
            env.setFaults(options_.faults, options_.faultSeed);

        // The tuning run's deterministic metrics land in the same
        // store the rollout health checks read: tool-side and
        // fleet-side telemetry share one ODS path.
        ods.recordSnapshot(report.metrics, clock,
                           "tool." + target.name() + ".");

        inform("rolling out %s (%zu/%zu): %d servers, %d racks",
               target.name().c_str(), i + 1, targets.size(),
               plan.servers, plan.topology.racks);
        FleetSlice slice(env, plan.servers, report.production,
                         plan.topology);
        FleetRolloutOutcome outcome;
        outcome.target = target.name();
        outcome.tunedGainPercent = report.gainOverProductionPercent();
        outcome.startedAtSec = clock;
        outcome.rollout = slice.rollout(report.softSku, plan.policy,
                                        ods, clock, plan.sampleEverySec);
        clock = outcome.rollout.finishedAtSec;

        // Dashboard view of the window this rollout just wrote: the
        // health report reads the same store the health checks did, so
        // it is deterministic and byte-stable across --jobs values.
        FleetHealthView view(ods);
        outcome.health =
            view.report(service.name, outcome.startedAtSec, clock)
                .toJson();
        outcomes.push_back(std::move(outcome));
    }
    // Store health lands in the operational gauges once per
    // orchestration — the --metrics table's ods.* rows.
    ods.publishGauges();
    return outcomes;
}

} // namespace softsku
