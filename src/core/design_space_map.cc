#include "core/design_space_map.hh"

namespace softsku {

const KnobOutcome *
KnobSweep::best() const
{
    // Compare paired gains, not raw sample means: each candidate was
    // measured at a different time of day, so raw means still carry
    // diurnal load while the paired gain does not.
    const KnobOutcome *baseline = nullptr;
    const KnobOutcome *winner = nullptr;
    for (const KnobOutcome &outcome : outcomes) {
        if (outcome.isBaseline)
            baseline = &outcome;
        // A raced-out arm carries a truncated, noisy mean; the race
        // already proved the surviving arm beats it.
        if (outcome.eliminated)
            continue;
        // Require both statistical significance and a material
        // effect: with tens of thousands of samples even a ±0.01%
        // fluctuation can reach p < 0.05.
        if (!outcome.significant || outcome.gainPercent < 0.05)
            continue;
        if (!winner || outcome.gainPercent > winner->gainPercent)
            winner = &outcome;
    }
    return winner ? winner : baseline;
}

const KnobSweep *
DesignSpaceMap::sweepFor(KnobId id) const
{
    for (const KnobSweep &sweep : sweeps) {
        if (sweep.id == id)
            return &sweep;
    }
    return nullptr;
}

Json
DesignSpaceMap::toJson() const
{
    Json doc = Json::object();
    doc.set("baseline", baseline.toJson());
    doc.set("baseline_mips", Json(baselineMips));

    Json sweepsDoc = Json::object();
    for (const KnobSweep &sweep : sweeps) {
        Json outcomes = Json::array();
        for (const KnobOutcome &outcome : sweep.outcomes) {
            Json entry = Json::object();
            entry.set("value", Json(outcome.value.label));
            entry.set("mean_mips", Json(outcome.meanMips));
            entry.set("gain_percent", Json(outcome.gainPercent));
            entry.set("gain_ci_percent", Json(outcome.gainCiPercent));
            entry.set("significant", Json(outcome.significant));
            entry.set("baseline", Json(outcome.isBaseline));
            entry.set("samples",
                      Json(static_cast<long long>(outcome.samples)));
            // Racing annotations, absent in fixed-budget maps so those
            // serialize byte-identically to the pre-racing format.
            if (outcome.eliminated)
                entry.set("eliminated", Json(true));
            if (outcome.samplesSaved > 0) {
                entry.set("samples_saved", Json(static_cast<long long>(
                                               outcome.samplesSaved)));
            }
            outcomes.push(std::move(entry));
        }
        sweepsDoc.set(knobKey(sweep.id), std::move(outcomes));
    }
    doc.set("sweeps", std::move(sweepsDoc));
    return doc;
}

} // namespace softsku
