/**
 * @file
 * The soft-SKU design space: the paper's seven configurable server
 * knobs (Sec. 4-5), plus the hyperscale-era memory-tier knobs.
 *
 *  1. core frequency        (MSR, 1.6-2.2 GHz)
 *  2. uncore frequency      (MSR, 1.4-1.8 GHz)
 *  3. active core count     (boot-loader isolcpus; requires reboot)
 *  4. LLC code/data ways    (resctrl CDP)
 *  5. hardware prefetchers  (MSR, five presets)
 *  6. transparent huge pages (kernel config file)
 *  7. static huge pages     (kernel parameter, 0-600 by 100)
 *  8. memory-bandwidth throttle (resctrl MB percentage)
 *  9. tier promotion policy (kernel memory-tiering policy file)
 * 10. far-memory placement ratio (kernel memory-tiering ratio file)
 *
 * Knobs 8-10 exist only on platforms that declare a far-memory tier
 * (PlatformSpec::farMemory); everything knob-generic — keys, display
 * names, sweep axes, actuation, JSON — lives in the descriptor
 * registry (core/knob_registry.hh), and the free functions below are
 * thin registry lookups.
 */

#ifndef SOFTSKU_CORE_KNOBS_HH
#define SOFTSKU_CORE_KNOBS_HH

#include <string>
#include <vector>

#include "arch/platform.hh"
#include "mem/dram.hh"
#include "os/hugepage.hh"
#include "prefetch/config.hh"
#include "util/json.hh"

namespace softsku {

struct WorkloadProfile;

/** Identifier for one of the registered knobs. */
enum class KnobId
{
    CoreFrequency = 0,
    UncoreFrequency,
    CoreCount,
    Cdp,
    Prefetcher,
    Thp,
    Shp,
    Mba,
    TierPolicyKnob,
    FarMemRatio,
};

/** All registered knob ids, in registry (paper) order. */
std::vector<KnobId> allKnobIds();

/** Registry key for a knob ("core_freq", "uncore_freq", ...). */
std::string knobKey(KnobId id);

/** Parse a knob registry key; fatal() on unknown keys, listing the
 *  valid ones. */
KnobId knobFromKey(const std::string &key);

/** Human-readable knob name. */
std::string knobDisplayName(KnobId id);

/** True when changing this knob requires a server reboot. */
bool knobRequiresReboot(KnobId id);

/** CDP partition setting (knob 4). */
struct CdpSetting
{
    bool enabled = false;
    int dataWays = 0;
    int codeWays = 0;

    bool operator==(const CdpSetting &) const = default;
};

/** A full soft-SKU configuration: a value for each registered knob. */
struct KnobConfig
{
    double coreFreqGHz = 2.2;
    double uncoreFreqGHz = 1.8;
    /** 0 means "all cores on the platform". */
    int activeCores = 0;
    CdpSetting cdp;
    PrefetcherPreset prefetch = PrefetcherPreset::AllOn;
    ThpMode thp = ThpMode::Always;
    int shpCount = 0;

    // Memory-tier knobs.  The defaults are the exact no-far-tier
    // behavior, and describe()/toJson() omit them at their defaults, so
    // legacy seven-knob configs keep their historical bytes (memo keys,
    // cache contexts, reports).
    /** resctrl MB throttle percent; 100 = unthrottled. */
    int mbaPercent = 100;
    /** Far-tier promotion aggressiveness; Static never migrates. */
    TierPolicy tierPolicy = TierPolicy::Static;
    /** Fraction of the footprint placed on the far tier. */
    double farMemRatio = 0.0;

    bool operator==(const KnobConfig &) const = default;

    /** Resolve activeCores against a platform (0 → total). */
    int resolvedCores(const PlatformSpec &platform) const;

    /**
     * Canonical form for equality: activeCores resolved against the
     * platform, so "18 cores" and "all cores" compare equal on an
     * 18-core machine.
     */
    KnobConfig canonical(const PlatformSpec &platform) const;

    /** One-line description, e.g. for A/B test logs. */
    std::string describe() const;

    /**
     * Serialize for design-space maps and reports (schema v3): a keyed
     * "knobs" object written by the descriptor codecs.  Memory-tier
     * knobs are omitted at their defaults, so legacy configs emit
     * exactly the seven historical keys.
     */
    Json toJson() const;

    /**
     * Deserialize; fatal() on malformed documents (user input).
     * Reads both the v3 keyed-knobs layout and the flat v2 layout
     * ("core_freq_ghz", ...) so persisted A/B caches and old reports
     * stay loadable.
     */
    static KnobConfig fromJson(const Json &doc);
};

/**
 * The stock, fresh-install configuration for @p platform running
 * @p profile (paper Sec. 6.2): max core/uncore frequency (core capped
 * 0.2 GHz lower for AVX-heavy services), all cores, no CDP, all
 * prefetchers, THP always on, no SHPs.
 */
KnobConfig stockConfig(const PlatformSpec &platform,
                       const WorkloadProfile &profile);

/**
 * The hand-tuned production configuration the paper's characterization
 * ran under and μSKU competes against (Sec. 6.1): max frequencies (AVX
 * cap applies), all cores, no CDP, THP in its kernel-default madvise
 * mode, expert-chosen prefetcher sets (all on, except L2-stream+DCU on
 * Broadwell), and Web's hand-picked SHP reservations (200 on Skylake,
 * 488 on Broadwell).
 */
KnobConfig productionConfig(const PlatformSpec &platform,
                            const WorkloadProfile &profile);

} // namespace softsku

#endif // SOFTSKU_CORE_KNOBS_HH
