/**
 * @file
 * The design-space map the A/B tester fills in (paper Sec. 4): per
 * knob, the measured outcome of every candidate value against the
 * baseline, with 95%-confidence annotations.  The soft-SKU generator
 * consumes it; it also serializes to JSON for reports.
 */

#ifndef SOFTSKU_CORE_DESIGN_SPACE_MAP_HH
#define SOFTSKU_CORE_DESIGN_SPACE_MAP_HH

#include <vector>

#include "core/ab_test.hh"
#include "core/design_space.hh"
#include "util/json.hh"

namespace softsku {

/** Measured outcome of one candidate knob value. */
struct KnobOutcome
{
    KnobValue value;
    double meanMips = 0.0;
    double gainPercent = 0.0;       //!< vs baseline
    double gainCiPercent = 0.0;     //!< CI half-width on the gain
    bool significant = false;
    bool isBaseline = false;
    std::uint64_t samples = 0;
    /**
     * Racing struck this arm before its budget ran out: its few
     * samples say only "not the best", never "how good" — best() must
     * skip it, and its (noisy, truncated) mean must not be composed.
     */
    bool eliminated = false;
    /** Samples the adaptive search did not need, vs the fixed-budget
     *  cap this comparison would otherwise have run to. */
    std::uint64_t samplesSaved = 0;
};

/** Sweep results for one knob. */
struct KnobSweep
{
    KnobId id = KnobId::CoreFrequency;
    std::vector<KnobOutcome> outcomes;

    /**
     * The most performant setting: the highest-mean outcome whose win
     * over the baseline is statistically significant; the baseline
     * itself when nothing significantly beats it.
     */
    const KnobOutcome *best() const;
};

/** The full map: baseline plus one sweep per explored knob. */
struct DesignSpaceMap
{
    KnobConfig baseline;
    double baselineMips = 0.0;
    std::vector<KnobSweep> sweeps;

    /** Sweep for @p id; nullptr when the knob was not explored. */
    const KnobSweep *sweepFor(KnobId id) const;

    /** Serialize for the μSKU report. */
    Json toJson() const;
};

} // namespace softsku

#endif // SOFTSKU_CORE_DESIGN_SPACE_MAP_HH
