#include "core/usku.hh"

#include <cmath>

#include "core/ab_test.hh"
#include "services/services.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

double
UskuReport::gainOverProductionPercent() const
{
    if (productionMips <= 0.0)
        return 0.0;
    return (softSkuMips / productionMips - 1.0) * 100.0;
}

double
UskuReport::gainOverStockPercent() const
{
    if (stockMips <= 0.0)
        return 0.0;
    return (softSkuMips / stockMips - 1.0) * 100.0;
}

Json
UskuReport::toJson() const
{
    Json doc = Json::object();
    doc.set("spec", spec.toJson());
    doc.set("production", production.toJson());
    doc.set("stock", stock.toJson());
    doc.set("soft_sku", softSku.toJson());
    doc.set("design_space_map", map.toJson());
    doc.set("production_mips", Json(productionMips));
    doc.set("stock_mips", Json(stockMips));
    doc.set("soft_sku_mips", Json(softSkuMips));
    doc.set("gain_over_production_percent",
            Json(gainOverProductionPercent()));
    doc.set("gain_over_stock_percent", Json(gainOverStockPercent()));
    doc.set("measurement_hours", Json(measurementHours));
    doc.set("configs_evaluated",
            Json(static_cast<long long>(configsEvaluated)));
    Json validationDoc = Json::object();
    validationDoc.set("duration_sec", Json(validation.durationSec));
    validationDoc.set("samples",
                      Json(static_cast<long long>(validation.samples)));
    validationDoc.set("mean_gain_percent",
                      Json(validation.meanGainPercent));
    validationDoc.set("gain_ci_percent", Json(validation.gainCiPercent));
    validationDoc.set("stable", Json(validation.stable));
    doc.set("validation", std::move(validationDoc));
    return doc;
}

std::string
UskuReport::summary() const
{
    std::string out;
    out += format("μSKU report: %s on %s (%s sweep)\n",
                  spec.microservice.c_str(), spec.platform.c_str(),
                  sweepModeName(spec.sweep).c_str());
    out += format("  production: %s\n", production.describe().c_str());
    out += format("  soft SKU:   %s\n", softSku.describe().c_str());
    out += format("  gain over production: %+.2f%%\n",
                  gainOverProductionPercent());
    out += format("  gain over stock:      %+.2f%%\n",
                  gainOverStockPercent());
    out += format("  configs evaluated: %llu, measurement time: %.1f h\n",
                  static_cast<unsigned long long>(configsEvaluated),
                  measurementHours);
    out += format("  validation: %+.2f%% ± %.2f%% over %.1f days (%s)\n",
                  validation.meanGainPercent, validation.gainCiPercent,
                  validation.durationSec / 86400.0,
                  validation.stable ? "stable" : "not significant");
    return out;
}

Usku::Usku(ProductionEnvironment &env) : env_(env) {}

UskuReport
Usku::run(const InputSpec &specIn)
{
    InputSpec spec = specIn;
    spec.normalize();
    spec.validate();

    const WorkloadProfile &profile = env_.profile();
    const PlatformSpec &platform = env_.platform();
    if (profile.name != toLower(spec.microservice)) {
        fatal("μSKU: environment simulates '%s' but the spec targets "
              "'%s'", profile.name.c_str(), spec.microservice.c_str());
    }

    UskuReport report;
    report.spec = spec;
    report.plan = buildTestPlan(spec, platform, profile);
    report.production = productionConfig(platform, profile);
    report.stock = stockConfig(platform, profile);

    ABTester tester(env_, spec);
    switch (spec.sweep) {
      case SweepMode::Independent:
        report.map = sweepIndependent(tester, report.plan,
                                      report.production);
        break;
      case SweepMode::Exhaustive:
        report.map = sweepExhaustive(tester, report.plan,
                                     report.production);
        break;
      case SweepMode::HillClimb:
        report.map = sweepHillClimb(tester, report.plan,
                                    report.production);
        break;
    }

    SoftSkuGenerator generator;
    report.softSku = generator.compose(report.map);

    report.productionMips = env_.trueMips(report.production);
    report.stockMips = env_.trueMips(report.stock);
    report.softSkuMips = env_.trueMips(report.softSku);
    report.measurementHours = tester.elapsedSec() / 3600.0;
    report.configsEvaluated = env_.configsSimulated();

    OdsStore ods;
    report.validation = generator.validate(
        env_, report.softSku, report.production,
        spec.validationDurationSec, ods);
    return report;
}

namespace {

/** Record one measured outcome into a sweep. */
KnobOutcome
makeOutcome(const KnobValue &value, const ABTestResult &test)
{
    KnobOutcome outcome;
    outcome.value = value;
    outcome.meanMips = test.samplesB.mean();
    outcome.gainPercent = test.gainPercent();
    outcome.gainCiPercent = test.gainCiPercent();
    outcome.significant = test.significant;
    outcome.samples = test.samplesUsed;
    return outcome;
}

} // namespace

DesignSpaceMap
Usku::sweepIndependent(ABTester &tester, const TestPlan &plan,
                       const KnobConfig &baseline)
{
    DesignSpaceMap map;
    map.baseline = baseline;
    map.baselineMips = env_.trueMips(baseline);

    for (const KnobPlan &knobPlan : plan.knobs) {
        KnobSweep sweep;
        sweep.id = knobPlan.id;
        KnobValue baselineValue =
            KnobValue::fromConfig(knobPlan.id, baseline);

        const PlatformSpec &platform = env_.platform();
        for (const KnobValue &value : knobPlan.values) {
            KnobConfig candidate = baseline;
            value.applyTo(candidate);
            if (candidate.canonical(platform) ==
                baseline.canonical(platform)) {
                KnobOutcome outcome;
                outcome.value = baselineValue;
                outcome.meanMips = map.baselineMips;
                outcome.isBaseline = true;
                sweep.outcomes.push_back(outcome);
                continue;
            }
            ABTestResult test = tester.compare(baseline, candidate);
            sweep.outcomes.push_back(makeOutcome(value, test));
            debug("μSKU A/B: %s = %s → %+0.2f%% (p=%.3g, n=%llu)",
                  knobKey(knobPlan.id).c_str(), value.label.c_str(),
                  test.gainPercent(), test.welch.pValue,
                  static_cast<unsigned long long>(test.samplesUsed));
        }
        map.sweeps.push_back(std::move(sweep));
    }
    return map;
}

DesignSpaceMap
Usku::sweepExhaustive(ABTester &tester, const TestPlan &plan,
                      const KnobConfig &baseline)
{
    // Bound the cross product: the paper observes exhaustive sweeps
    // cannot complete between code pushes; the limit keeps runs honest.
    constexpr size_t kMaxCombinations = 512;
    size_t combinations = 1;
    for (const KnobPlan &knobPlan : plan.knobs) {
        combinations *= knobPlan.values.size();
        if (combinations > kMaxCombinations) {
            fatal("μSKU: exhaustive sweep would need %zu+ combinations "
                  "(limit %zu); restrict the knob list or use the "
                  "independent/hillclimb modes",
                  combinations, kMaxCombinations);
        }
    }

    DesignSpaceMap map;
    map.baseline = baseline;
    map.baselineMips = env_.trueMips(baseline);

    // Enumerate the cross product; track the best configuration seen
    // and report it as a single-knob-sweep-like map entry per knob so
    // composition picks exactly the winning combination.
    std::vector<size_t> index(plan.knobs.size(), 0);
    KnobConfig bestConfig = baseline;
    double bestMean = map.baselineMips;
    bool done = plan.knobs.empty();
    while (!done) {
        KnobConfig candidate = baseline;
        for (size_t k = 0; k < plan.knobs.size(); ++k)
            plan.knobs[k].values[index[k]].applyTo(candidate);

        if (!(candidate == baseline)) {
            ABTestResult test = tester.compare(baseline, candidate);
            if (test.significant && test.welch.meanDiff > 0.0 &&
                test.samplesB.mean() > bestMean) {
                bestMean = test.samplesB.mean();
                bestConfig = candidate;
            }
        }

        // Advance the mixed-radix counter.
        size_t k = 0;
        while (k < index.size()) {
            if (++index[k] < plan.knobs[k].values.size())
                break;
            index[k] = 0;
            ++k;
        }
        done = k == index.size();
    }

    for (const KnobPlan &knobPlan : plan.knobs) {
        KnobSweep sweep;
        sweep.id = knobPlan.id;
        KnobOutcome outcome;
        outcome.value = KnobValue::fromConfig(knobPlan.id, bestConfig);
        outcome.meanMips = bestMean;
        outcome.gainPercent =
            map.baselineMips > 0.0
                ? (bestMean / map.baselineMips - 1.0) * 100.0
                : 0.0;
        outcome.significant = !(bestConfig == baseline);
        outcome.isBaseline = bestConfig == baseline;
        sweep.outcomes.push_back(outcome);
        map.sweeps.push_back(std::move(sweep));
    }
    return map;
}

DesignSpaceMap
Usku::sweepHillClimb(ABTester &tester, const TestPlan &plan,
                     const KnobConfig &baseline)
{
    DesignSpaceMap map;
    map.baseline = baseline;
    map.baselineMips = env_.trueMips(baseline);

    KnobConfig current = baseline;
    const int maxPasses = 3;
    for (int pass = 0; pass < maxPasses; ++pass) {
        bool moved = false;
        for (const KnobPlan &knobPlan : plan.knobs) {
            const KnobValue *bestValue = nullptr;
            double bestGain = 0.0;
            ABTestResult bestTest;
            for (const KnobValue &value : knobPlan.values) {
                KnobConfig candidate = current;
                value.applyTo(candidate);
                if (candidate == current)
                    continue;
                ABTestResult test = tester.compare(current, candidate);
                if (test.significant && test.gainPercent() > bestGain) {
                    bestGain = test.gainPercent();
                    bestValue = &value;
                    bestTest = test;
                }
            }
            if (bestValue) {
                bestValue->applyTo(current);
                moved = true;
                KnobSweep sweep;
                sweep.id = knobPlan.id;
                sweep.outcomes.push_back(makeOutcome(*bestValue, bestTest));
                sweep.outcomes.back().significant = true;
                map.sweeps.push_back(std::move(sweep));
            }
        }
        if (!moved)
            break;
    }

    // Collapse to one final sweep entry per knob reflecting `current`.
    DesignSpaceMap collapsed;
    collapsed.baseline = baseline;
    collapsed.baselineMips = map.baselineMips;
    for (const KnobPlan &knobPlan : plan.knobs) {
        KnobSweep sweep;
        sweep.id = knobPlan.id;
        KnobOutcome outcome;
        outcome.value = KnobValue::fromConfig(knobPlan.id, current);
        outcome.meanMips = env_.trueMips(current);
        outcome.gainPercent =
            collapsed.baselineMips > 0.0
                ? (outcome.meanMips / collapsed.baselineMips - 1.0) * 100.0
                : 0.0;
        KnobValue baseValue = KnobValue::fromConfig(knobPlan.id, baseline);
        outcome.isBaseline = outcome.value == baseValue;
        outcome.significant = !outcome.isBaseline;
        sweep.outcomes.push_back(outcome);
        collapsed.sweeps.push_back(std::move(sweep));
    }
    return collapsed;
}

} // namespace softsku
