#include "core/usku.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/ab_cache.hh"
#include "core/ab_test.hh"
#include "obs/trace.hh"
#include "services/services.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

/**
 * A live continued measurement window for one comparison (adaptive
 * search): the owned fleet slice plus the resumable session measuring
 * in it.  The slice must outlive the session, hence the member order.
 */
struct RaceWindow
{
    ProductionEnvironment slice;
    MeasureSession session;

    RaceWindow(ProductionEnvironment &&sliceIn, const InputSpec &spec,
               const RobustnessPolicy &policy, const KnobConfig &baseline,
               const KnobConfig &candidate, double startSec)
        : slice(std::move(sliceIn)),
          session(slice, spec, policy, baseline, candidate, startSec)
    {
    }
};

double
UskuReport::gainOverProductionPercent() const
{
    if (productionMips <= 0.0)
        return 0.0;
    return (softSkuMips / productionMips - 1.0) * 100.0;
}

double
UskuReport::gainOverStockPercent() const
{
    if (stockMips <= 0.0)
        return 0.0;
    return (softSkuMips / stockMips - 1.0) * 100.0;
}

Json
UskuReport::toJson() const
{
    Json doc = Json::object();
    doc.set("schema_version", Json(kReportSchemaVersion));
    doc.set("spec", spec.toJson());
    doc.set("production", production.toJson());
    doc.set("stock", stock.toJson());
    doc.set("soft_sku", softSku.toJson());
    doc.set("design_space_map", map.toJson());
    doc.set("production_mips", Json(productionMips));
    doc.set("stock_mips", Json(stockMips));
    doc.set("soft_sku_mips", Json(softSkuMips));
    doc.set("gain_over_production_percent",
            Json(gainOverProductionPercent()));
    doc.set("gain_over_stock_percent", Json(gainOverStockPercent()));
    doc.set("measurement_hours", Json(measurementHours));
    doc.set("configs_evaluated",
            Json(static_cast<long long>(configsEvaluated)));
    doc.set("ab_comparisons",
            Json(static_cast<long long>(abComparisons)));
    // cache_hits is deliberately absent: whether a comparison was
    // measured or replayed is operational, and a cache-served rerun
    // must serialize byte-identically to the run that measured.
    doc.set("metrics", metrics.toJson());
    if (faultPlan.any() || faults.any()) {
        Json faultsDoc = Json::object();
        faultsDoc.set("plan", faultPlan.toJson());
        faultsDoc.set("telemetry", faults.toJson());
        doc.set("faults", std::move(faultsDoc));
    }
    Json validationDoc = Json::object();
    validationDoc.set("duration_sec", Json(validation.durationSec));
    validationDoc.set("samples",
                      Json(static_cast<long long>(validation.samples)));
    validationDoc.set("mean_gain_percent",
                      Json(validation.meanGainPercent));
    validationDoc.set("gain_ci_percent", Json(validation.gainCiPercent));
    validationDoc.set("stable", Json(validation.stable));
    if (validation.samplesDropped > 0) {
        validationDoc.set(
            "samples_dropped",
            Json(static_cast<long long>(validation.samplesDropped)));
    }
    if (validation.samplesRejected > 0) {
        validationDoc.set(
            "samples_rejected",
            Json(static_cast<long long>(validation.samplesRejected)));
    }
    doc.set("validation", std::move(validationDoc));
    return doc;
}

std::string
UskuReport::summary() const
{
    std::string out;
    out += format("μSKU report: %s on %s (%s sweep)\n",
                  spec.microservice.c_str(), spec.platform.c_str(),
                  sweepModeName(spec.sweep).c_str());
    out += format("  production: %s\n", production.describe().c_str());
    out += format("  soft SKU:   %s\n", softSku.describe().c_str());
    out += format("  gain over production: %+.2f%%\n",
                  gainOverProductionPercent());
    out += format("  gain over stock:      %+.2f%%\n",
                  gainOverStockPercent());
    out += format("  configs evaluated: %llu, measurement time: %.1f h\n",
                  static_cast<unsigned long long>(configsEvaluated),
                  measurementHours);
    out += format("  A/B comparisons: %llu (%llu served from cache)\n",
                  static_cast<unsigned long long>(abComparisons),
                  static_cast<unsigned long long>(cacheHits));
    if (faultPlan.any() || faults.any()) {
        out += format("  faults (%s): %llu injected, %llu retries, "
                      "%llu dropped, %llu rejected, %llu guardrail "
                      "aborts, %llu abandoned\n",
                      faultPlan.describe().c_str(),
                      static_cast<unsigned long long>(
                          faults.faultsInjected()),
                      static_cast<unsigned long long>(faults.retries),
                      static_cast<unsigned long long>(
                          faults.samplesDropped),
                      static_cast<unsigned long long>(
                          faults.samplesRejected),
                      static_cast<unsigned long long>(
                          faults.guardrailAborts),
                      static_cast<unsigned long long>(faults.abandoned));
    }
    out += format("  validation: %+.2f%% ± %.2f%% over %.1f days (%s)\n",
                  validation.meanGainPercent, validation.gainCiPercent,
                  validation.durationSec / 86400.0,
                  validation.stable ? "stable" : "not significant");
    return out;
}

namespace {

/** Record one measured outcome into a sweep. */
KnobOutcome
makeOutcome(const KnobValue &value, const ABTestResult &test)
{
    KnobOutcome outcome;
    outcome.value = value;
    outcome.meanMips = test.samplesB.mean();
    outcome.gainPercent = test.gainPercent();
    outcome.gainCiPercent = test.gainCiPercent();
    outcome.significant = test.significant;
    outcome.samples = test.samplesUsed;
    return outcome;
}

/** Stable 64-bit id for a comparison key (FNV-1a). */
std::uint64_t
streamIdFor(const std::string &key)
{
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

/**
 * Deterministic measurement-window start for a task: spread arms
 * across a simulated week of diurnal phases in half-hour steps, so
 * different knob tests still see different load regimes — as the
 * serial multi-hour sweep did — without sharing a clock.
 */
double
phaseOffsetSec(std::uint64_t streamId)
{
    return static_cast<double>(streamId % 336) * 1800.0;
}

} // namespace

UskuOptions
UskuOptions::fromTool(const ToolOptions &tool)
{
    UskuOptions options;
    options.jobs = tool.jobs;
    options.faults = tool.faults;
    options.faultSeed = tool.faultSeed;
    options.cacheDir = tool.cacheDir;
    options.progress = tool.progress;
    // traceOut stays with the tool: ToolOptions::writeTrace() emits the
    // file once, after every run the process performed.
    return options;
}

Usku::Usku(ProductionEnvironment &env, UskuOptions options)
    : env_(env), options_(options)
{
    if (options_.pool) {
        pool_ = options_.pool;
    } else if (options_.jobs != 1) {
        ownedPool_ = std::make_unique<ThreadPool>(options_.jobs);
        pool_ = ownedPool_.get();
    }
    if (options_.faults.any()) {
        env_.setFaults(options_.faults, options_.faultSeed);
        // Measuring a hostile fleet without defenses is never what an
        // operator means; an explicit policy still wins.
        if (options_.robustness == RobustnessPolicy{})
            options_.robustness = RobustnessPolicy::hostile();
    }
    if (!options_.traceOut.empty())
        Tracer::global().enable();
}

Usku::~Usku() = default;

UskuReport
Usku::run(const InputSpec &specIn)
{
    InputSpec spec = specIn;
    spec.normalize();
    spec.validate();

    const WorkloadProfile &profile = env_.profile();
    const PlatformSpec &platform = env_.platform();
    if (profile.name != toLower(spec.microservice)) {
        fatal("μSKU: environment simulates '%s' but the spec targets "
              "'%s'", profile.name.c_str(), spec.microservice.c_str());
    }

    comparisons_ = 0;
    cacheHits_ = 0;
    measuredSec_ = 0.0;
    faults_ = FaultTelemetry{};
    metrics_.reset();
    batchSeq_ = 0;
    seenThisRun_.clear();
    configsThisRun_.clear();
    raceWindows_.clear();

    // Memo entries are only meaningful under the context they were
    // measured in; a context change (new fault plan, different
    // statistics policy) invalidates them.  With a cache directory the
    // matching persisted entries preload here, so a repeat invocation
    // replays instead of measuring.
    const std::string context =
        abCacheContext(env_, spec, options_.robustness);
    if (context != memoContext_) {
        memo_.clear();
        validationMemo_.clear();
        memoContext_ = context;
    }
    if (!options_.cacheDir.empty()) {
        std::size_t loaded = loadAbCache(options_.cacheDir, context,
                                         memo_, &validationMemo_);
        if (loaded > 0) {
            inform("A/B cache: %zu persisted comparisons loaded from %s",
                   loaded, options_.cacheDir.c_str());
        }
    }

    // Attribute every log line from this run (and its workers get the
    // comparison-level context in evaluate()) to the service.  The
    // trace tag is scoped before the first span so every root path in
    // this run — including usku.run itself — files under it.
    LogContext logCtx(toLower(spec.microservice));
    TraceTagScope tagScope(options_.traceTag);
    ScopedSpan runSpan("usku", "usku.run", {kTraceUsku});
    runSpan.arg("service", toLower(spec.microservice));
    runSpan.arg("platform", spec.platform);
    runSpan.arg("sweep", sweepModeName(spec.sweep));

    if (options_.progress) {
        progress_ = std::make_unique<SweepProgress>(
            toLower(spec.microservice) + " sweep",
            pool_ ? pool_->threadCount() : 1);
    }

    UskuReport report;
    report.spec = spec;
    report.faultPlan = env_.faults();
    report.plan = buildTestPlan(spec, platform, profile);
    report.production = productionConfig(platform, profile);
    report.stock = stockConfig(platform, profile);
    configsThisRun_.insert(
        report.production.canonical(platform).describe());
    configsThisRun_.insert(report.stock.canonical(platform).describe());

    if (spec.search == SearchMode::Race) {
        // Racing contests the arms of one knob against each other;
        // only the independent sweep has that per-knob structure.
        if (spec.sweep != SweepMode::Independent) {
            fatal("μSKU: racing search requires the independent sweep "
                  "(spec asks for %s); use search=halving for joint "
                  "combinations",
                  sweepModeName(spec.sweep).c_str());
        }
        report.map = sweepRace(report.plan, report.production, spec);
    } else if (spec.search == SearchMode::Halving) {
        report.map = sweepHalving(report.plan, report.production, spec);
    } else {
        switch (spec.sweep) {
          case SweepMode::Independent:
            report.map = sweepIndependent(report.plan, report.production,
                                          spec);
            break;
          case SweepMode::Exhaustive:
            report.map = sweepExhaustive(report.plan, report.production,
                                         spec);
            break;
          case SweepMode::HillClimb:
            report.map = sweepHillClimb(report.plan, report.production,
                                        spec);
            break;
        }
    }

    SoftSkuGenerator generator;
    report.softSku = generator.compose(report.map);
    configsThisRun_.insert(report.softSku.canonical(platform).describe());

    env_.prepareConfigs(
        {report.production, report.stock, report.softSku}, &metrics_);
    report.productionMips = env_.trueMips(report.production);
    report.stockMips = env_.trueMips(report.stock);
    report.softSkuMips = env_.trueMips(report.softSku);
    report.measurementHours = measuredSec_ / 3600.0;
    // Per-run, not the environment's cumulative simulation-cache size:
    // a cache-served rerun touches the same configurations without
    // simulating anything new, and must report the same count.
    report.configsEvaluated = configsThisRun_.size();
    report.abComparisons = comparisons_;
    report.cacheHits = cacheHits_;
    report.faults = faults_;

    OdsStore ods;
    report.validation = generator.validate(
        env_, report.softSku, report.production,
        spec.validationDurationSec, ods, 60.0, pool_, &metrics_,
        &validationMemo_);
    report.faults.samplesDropped += report.validation.samplesDropped;
    report.faults.samplesRejected += report.validation.samplesRejected;

    // Deterministic roll-up counters, recorded on the caller thread
    // after every sweep and validation chunk has committed.  Cache
    // hits are operational — a warm run hits where the cold run
    // measured, yet both must snapshot identical deterministic rows.
    metrics_.counter("sweep.comparisons").add(report.abComparisons);
    metrics_.counter("sweep.cache_hits", MetricScope::Operational)
        .add(report.cacheHits);
    metrics_.counter("faults.crashes").add(report.faults.crashes);
    metrics_.counter("faults.apply_failures")
        .add(report.faults.applyFailures);
    metrics_.counter("faults.samples_dropped")
        .add(report.faults.samplesDropped);
    metrics_.counter("faults.samples_corrupted")
        .add(report.faults.samplesCorrupted);
    metrics_.counter("faults.samples_rejected")
        .add(report.faults.samplesRejected);
    metrics_.counter("faults.retries").add(report.faults.retries);
    metrics_.counter("faults.guardrail_aborts")
        .add(report.faults.guardrailAborts);
    metrics_.counter("faults.abandoned").add(report.faults.abandoned);

    // Operational rows: scheduling and wall-clock facts that must stay
    // out of the byte-compared report body.
    if (pool_) {
        ThreadPoolStats poolStats = pool_->stats();
        MetricScope op = MetricScope::Operational;
        metrics_.gauge("pool.submitted", op)
            .set(static_cast<double>(poolStats.submitted));
        metrics_.gauge("pool.executed", op)
            .set(static_cast<double>(poolStats.executed));
        metrics_.gauge("pool.stolen", op)
            .set(static_cast<double>(poolStats.stolen));
        metrics_.gauge("pool.max_queued", op)
            .set(static_cast<double>(poolStats.maxQueued));
    }

    report.metrics = metrics_.snapshot(/*includeOperational=*/false);

    if (!options_.cacheDir.empty() &&
        storeAbCache(options_.cacheDir, context, memo_,
                     &validationMemo_)) {
        debug("A/B cache: %zu comparisons persisted to %s", memo_.size(),
              options_.cacheDir.c_str());
    }

    if (progress_) {
        progress_->finish();
        progress_.reset();
    }
    if (!options_.traceOut.empty()) {
        if (Tracer::global().writeChromeTrace(options_.traceOut))
            inform("Chrome trace written to %s",
                   options_.traceOut.c_str());
        else
            warn("could not write trace to %s", options_.traceOut.c_str());
    }
    return report;
}

MetricsSnapshot
Usku::fullMetrics() const
{
    return metrics_.snapshot(/*includeOperational=*/true);
}

std::vector<ABTestResult>
Usku::evaluate(const std::vector<Comparison> &batch, const InputSpec &spec)
{
    comparisons_ += batch.size();
    const PlatformSpec &platform = env_.platform();
    std::vector<std::string> keys(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        std::string a = batch[i].baseline.canonical(platform).describe();
        std::string b = batch[i].candidate.canonical(platform).describe();
        configsThisRun_.insert(a);
        configsThisRun_.insert(b);
        keys[i] = a + " vs " + b;
    }
    return evaluateKeyed(batch, keys, nullptr, spec);
}

std::vector<ABTestResult>
Usku::evaluateChunks(const std::vector<ChunkPull> &batch,
                     const InputSpec &spec)
{
    // The chunk — not the comparison — is the memo/cache unit here:
    // every pull gets its own key carrying the cumulative window state
    // at that pull's end, so a warm run replays exactly the chunks the
    // racing engine re-requests, in whatever round it re-requests them.
    const PlatformSpec &platform = env_.platform();
    std::vector<Comparison> tasks(batch.size());
    std::vector<std::string> keys(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        tasks[i] = batch[i].task;
        std::string a =
            batch[i].task.baseline.canonical(platform).describe();
        std::string b =
            batch[i].task.candidate.canonical(platform).describe();
        configsThisRun_.insert(a);
        configsThisRun_.insert(b);
        keys[i] = a + " vs " + b +
                  format(" #c%llu", static_cast<unsigned long long>(
                                        batch[i].ordinal));
    }
    return evaluateKeyed(tasks, keys, &batch, spec);
}

std::vector<ABTestResult>
Usku::evaluateKeyed(const std::vector<Comparison> &batch,
                    const std::vector<std::string> &keys,
                    const std::vector<ChunkPull> *pulls,
                    const InputSpec &spec)
{
    const std::uint64_t batchTag = batchSeq_++;
    std::vector<ABTestResult> results(batch.size());

    // The run tag active on this (driver) thread; worker tasks below
    // re-establish it so concurrent runs sharing one pool keep their
    // span paths apart.
    const std::uint64_t runTag = Tracer::currentRunTag();

    // Sort out which slots need measurement: memo hits and in-batch
    // duplicates resolve without touching the simulator.  Stream ids
    // derive from the comparison key itself, so a given comparison
    // replays the same noise stream no matter where it appears.  Keys
    // are kept for every slot — the commit loop accounts by first
    // occurrence per run, measured or replayed alike.
    struct Pending
    {
        size_t slot;
        std::uint64_t stream;
    };
    std::vector<Pending> pending;
    std::unordered_map<std::string, size_t> seenInBatch;
    std::vector<std::pair<size_t, size_t>> aliases;  // (dup, source)

    for (size_t i = 0; i < batch.size(); ++i) {
        const std::string &key = keys[i];
        auto hit = memo_.find(key);
        if (hit != memo_.end()) {
            results[i] = hit->second;
            ++cacheHits_;
            ScopedSpan span("sweep", "sweep.cache_hit",
                            {kTraceSweep, batchTag,
                             static_cast<std::uint64_t>(i)});
            span.arg("key", key);
            traceCounter("sweep", "sweep.cache_hits_total",
                         static_cast<double>(cacheHits_));
            continue;
        }
        auto first = seenInBatch.find(key);
        if (first != seenInBatch.end()) {
            aliases.emplace_back(i, first->second);
            ++cacheHits_;
            ScopedSpan span("sweep", "sweep.cache_hit",
                            {kTraceSweep, batchTag,
                             static_cast<std::uint64_t>(i)});
            span.arg("key", key);
            span.arg("in_batch", true);
            traceCounter("sweep", "sweep.cache_hits_total",
                         static_cast<double>(cacheHits_));
            continue;
        }
        seenInBatch.emplace(key, i);
        pending.push_back(Pending{i, streamIdFor(key)});
    }

    // Every configuration this batch will measure is known up front, so
    // simulate the cache misses together through the batched core (one
    // lane per configuration) before the comparisons fan out.  The
    // worker tasks then find every truth already cached; with
    // SimCoreKind::Scalar this is a no-op and they simulate lazily.
    if (!pending.empty()) {
        std::vector<KnobConfig> prep;
        prep.reserve(pending.size() * 2);
        for (const Pending &p : pending) {
            prep.push_back(batch[p.slot].baseline);
            prep.push_back(batch[p.slot].candidate);
        }
        env_.prepareConfigs(prep, &metrics_);
    }

    const RobustnessPolicy &robust = options_.robustness;
    auto evaluateOne = [&](size_t p) {
        const Comparison &task = batch[pending[p].slot];
        ABTestResult &out = results[pending[p].slot];

        // Root path (batch ordinal, batch slot) is derived from the
        // plan alone, so the merged span order is thread-invariant.
        ScopedSpan span("sweep",
                        pulls ? "sweep.pull" : "sweep.compare",
                        {kTraceSweep, batchTag,
                         static_cast<std::uint64_t>(pending[p].slot)});
        span.arg("key", keys[pending[p].slot]);
        LogContext logCtx(format(
            "%s b%llu.%zu", env_.profile().name.c_str(),
            static_cast<unsigned long long>(batchTag), pending[p].slot));

        // QoS guardrail: refuse to measure a candidate whose solved
        // operating point says the p99 SLO cannot hold at production
        // traffic — either outright (the solve never met the SLO) or
        // by capacity collapse (peak QPS under SLO falls so far that
        // the live load envelope would violate it).
        if (robust.qosGuardrail) {
            const ServiceOperatingPoint &base =
                env_.operatingPoint(task.baseline);
            const ServiceOperatingPoint &cand =
                env_.operatingPoint(task.candidate);
            bool sloBroken =
                cand.p99LatencySec >
                cand.sloLatencySec * (1.0 + robust.qosMarginFraction);
            bool capacityCollapse =
                base.peakQps > 0.0 &&
                cand.peakQps <
                    base.peakQps * robust.minPeakQpsFraction;
            if (sloBroken || capacityCollapse) {
                out.configA = task.baseline;
                out.configB = task.candidate;
                out.qosAborted = true;
                out.faults.guardrailAborts = 1;
                span.arg("qos_aborted", true);
                return;
            }
        }

        if (pulls) {
            // Adaptive-search pull: extend the comparison's continued
            // measurement window.  The window lives on the stream the
            // *comparison key alone* names — the exact stream the fixed
            // protocol's first attempt measures — so once an arm parks
            // at the fixed stop rule its cumulative statistics are
            // bit-identical to a one-shot fixed run.  No retry-on-crash
            // here: a dead window is the arm's verdict, and the race
            // driver withdraws (or keeps the parked snapshot of) the
            // arm.
            const ChunkPull &pull = (*pulls)[pending[p].slot];
            const PlatformSpec &platform = env_.platform();
            std::string baseKey =
                task.baseline.canonical(platform).describe() + " vs " +
                task.candidate.canonical(platform).describe();
            std::uint64_t stream = streamIdFor(baseKey);
            RaceWindow *window = nullptr;
            {
                std::lock_guard<std::mutex> lock(raceWindowsMu_);
                auto it = raceWindows_.find(baseKey);
                if (it == raceWindows_.end()) {
                    it = raceWindows_
                             .emplace(baseKey,
                                      std::make_unique<RaceWindow>(
                                          env_.clone(stream), spec,
                                          robust, task.baseline,
                                          task.candidate,
                                          phaseOffsetSec(stream)))
                             .first;
                }
                window = it->second.get();
            }
            out = window->session.pullTo(pull.target, pull.stopAtVerdict);
            if (out.crashed || out.applyFailed)
                out.faults.abandoned = 1;
            span.arg("sim_sec", out.elapsedSec);
            span.arg("significant", out.significant);
            return;
        }

        // A private fleet slice per task: shared truth cache, private
        // noise substream.  Nothing here mutates engine state.  A
        // comparison killed by a crash or apply failure re-runs on a
        // replacement server — a fresh substream derived from the same
        // comparison key, so the retry schedule is thread-invariant.
        FaultTelemetry merged;
        double elapsed = 0.0;
        std::uint64_t accepted = 0;
        const int attempts = 1 + std::max(0, robust.maxRetries);
        for (int attempt = 0; attempt < attempts; ++attempt) {
            std::uint64_t stream =
                pending[p].stream +
                0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(
                                            attempt);
            ProductionEnvironment slice = env_.clone(stream);
            // Per-sample counters accrue in the commit loop (from the
            // merged result), not here: a replayed comparison must
            // account exactly like the one that measured.
            ABTester tester(slice, spec, robust, nullptr);
            out = tester.compareAt(task.baseline, task.candidate,
                                   phaseOffsetSec(stream));
            merged.merge(out.faults);
            elapsed += out.elapsedSec;
            accepted += out.samplesAccepted;
            if (!out.crashed && !out.applyFailed)
                break;
            // A trace point per fault, under the comparison's
            // deterministic path, so Perfetto shows where the hostile
            // fleet actually bit.
            traceInstant("fault", out.crashed ? "fault.crash"
                                              : "fault.apply_failure");
            if (attempt + 1 < attempts) {
                ++merged.retries;
                // A marker child span per re-measurement, so traces
                // carry exactly report.faults.retries of these.
                ScopedSpan retry("sweep", "sweep.retry");
                retry.arg("attempt", static_cast<std::uint64_t>(
                                         attempt + 1));
            }
        }
        if (out.crashed || out.applyFailed)
            ++merged.abandoned;
        out.faults = merged;
        out.elapsedSec = elapsed;
        out.samplesAccepted = accepted;
        span.arg("sim_sec", out.elapsedSec);
        span.arg("significant", out.significant);
    };

    // Wall timing and the progress line wrap the task; neither can
    // influence anything the task computes.  The driver's run tag is
    // re-established first: the task may run on any pool thread, and
    // on a shared pool that thread may otherwise carry another run's
    // tag.
    auto evaluateTask = [&](size_t p) {
        TraceTagScope tag(runTag);
        auto t0 = std::chrono::steady_clock::now();
        evaluateOne(p);
        double wallSec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        metrics_
            .histogram("sweep.comparison_wall_sec",
                       MetricScope::Operational, 1e-6, 1e4)
            .add(wallSec);
        if (progress_)
            progress_->taskDone(wallSec);
    };

    if (progress_)
        progress_->beginBatch(pending.size());
    if (pool_ && pending.size() > 1) {
        pool_->parallelFor(pending.size(), evaluateTask);
    } else {
        for (size_t p = 0; p < pending.size(); ++p)
            evaluateTask(p);
    }

    for (const auto &[dup, source] : aliases)
        results[dup] = results[source];

    // Commit sequentially in batch order so memo contents, fault
    // telemetry, and the floating-point accumulation order are
    // thread-count-invariant.  Accounting accrues on a key's *first
    // occurrence this run*, measured and replayed results alike: a
    // cache-served rerun thereby reports the same measurement hours,
    // fault telemetry, and metric rows as the run that measured, and
    // a repeat of an already-committed key adds nothing twice.
    for (size_t i = 0; i < batch.size(); ++i) {
        const ABTestResult &result = results[i];
        if (seenThisRun_.insert(keys[i]).second) {
            measuredSec_ += result.elapsedSec;
            faults_.merge(result.faults);
            // Every distinct chunk the adaptive search paid for,
            // whether it was measured or replayed — a warm rerun pulls
            // the same chunks and must count the same pulls.
            if (pulls)
                metrics_.counter("sweep.arm_pulls").add(1);
            metrics_.counter("ab.samples_accepted")
                .add(result.samplesAccepted);
            metrics_.counter("ab.samples_rejected")
                .add(result.faults.samplesRejected);
            metrics_.counter("ab.samples_dropped")
                .add(result.faults.samplesDropped);
            // Deterministic histogram: fed here, in commit order,
            // because its mean accumulates floating point in add order.
            if (result.elapsedSec > 0.0) {
                metrics_
                    .histogram("sweep.comparison_sim_sec",
                               MetricScope::Deterministic, 1.0, 1e8)
                    .add(result.elapsedSec);
            }
        }
        memo_.emplace(keys[i], result);
    }
    return results;
}

DesignSpaceMap
Usku::sweepIndependent(const TestPlan &plan, const KnobConfig &baseline,
                       const InputSpec &spec)
{
    ScopedSpan span("sweep", "sweep.independent");
    span.arg("knobs", static_cast<std::uint64_t>(plan.knobs.size()));

    DesignSpaceMap map;
    map.baseline = baseline;
    map.baselineMips = env_.trueMips(baseline);

    // Every non-baseline arm of every knob is one independent task.
    struct Slot
    {
        const KnobValue *value;
        bool isBaseline;
        size_t batchIndex;
    };
    const PlatformSpec &platform = env_.platform();
    std::vector<Comparison> batch;
    std::vector<std::vector<Slot>> slots(plan.knobs.size());
    for (size_t k = 0; k < plan.knobs.size(); ++k) {
        for (const KnobValue &value : plan.knobs[k].values) {
            KnobConfig candidate = baseline;
            value.applyTo(candidate);
            if (candidate.canonical(platform) ==
                baseline.canonical(platform)) {
                slots[k].push_back(Slot{&value, true, 0});
            } else {
                slots[k].push_back(Slot{&value, false, batch.size()});
                batch.push_back(Comparison{baseline, candidate});
            }
        }
    }

    std::vector<ABTestResult> results = evaluate(batch, spec);

    for (size_t k = 0; k < plan.knobs.size(); ++k) {
        const KnobPlan &knobPlan = plan.knobs[k];
        KnobSweep sweep;
        sweep.id = knobPlan.id;
        KnobValue baselineValue =
            KnobValue::fromConfig(knobPlan.id, baseline);
        for (const Slot &slot : slots[k]) {
            if (slot.isBaseline) {
                KnobOutcome outcome;
                outcome.value = baselineValue;
                outcome.meanMips = map.baselineMips;
                outcome.isBaseline = true;
                sweep.outcomes.push_back(outcome);
                continue;
            }
            const ABTestResult &test = results[slot.batchIndex];
            // Per-knob sim-latency histogram, fed in plan order (this
            // loop is serial) so the fp accumulation is deterministic.
            if (test.elapsedSec > 0.0) {
                metrics_
                    .histogram("sweep.knob_sim_sec." +
                                   knobKey(knobPlan.id),
                               MetricScope::Deterministic, 1.0, 1e8)
                    .add(test.elapsedSec);
            }
            sweep.outcomes.push_back(makeOutcome(*slot.value, test));
            debug("μSKU A/B: %s = %s → %+0.2f%% (p=%.3g, n=%llu)",
                  knobKey(knobPlan.id).c_str(), slot.value->label.c_str(),
                  test.gainPercent(), test.welch.pValue,
                  static_cast<unsigned long long>(test.samplesUsed));
        }
        map.sweeps.push_back(std::move(sweep));
    }
    return map;
}

DesignSpaceMap
Usku::sweepExhaustive(const TestPlan &plan, const KnobConfig &baseline,
                      const InputSpec &spec)
{
    ScopedSpan span("sweep", "sweep.exhaustive");
    span.arg("knobs", static_cast<std::uint64_t>(plan.knobs.size()));

    // Bound the cross product: the paper observes exhaustive sweeps
    // cannot complete between code pushes; the limit keeps runs honest.
    constexpr size_t kMaxCombinations = 512;
    size_t combinations = 1;
    for (const KnobPlan &knobPlan : plan.knobs) {
        combinations *= knobPlan.values.size();
        if (combinations > kMaxCombinations) {
            fatal("μSKU: exhaustive sweep would need %zu+ combinations "
                  "(limit %zu); restrict the knob list or use the "
                  "independent/hillclimb modes",
                  combinations, kMaxCombinations);
        }
    }

    DesignSpaceMap map;
    map.baseline = baseline;
    map.baselineMips = env_.trueMips(baseline);

    // Enumerate the cross product as one task batch; the reduction to
    // the best configuration happens in enumeration order afterwards,
    // so the winner is independent of evaluation schedule.
    std::vector<size_t> index(plan.knobs.size(), 0);
    std::vector<Comparison> batch;
    std::vector<KnobConfig> candidates;
    bool done = plan.knobs.empty();
    while (!done) {
        KnobConfig candidate = baseline;
        for (size_t k = 0; k < plan.knobs.size(); ++k)
            plan.knobs[k].values[index[k]].applyTo(candidate);
        if (!(candidate == baseline)) {
            batch.push_back(Comparison{baseline, candidate});
            candidates.push_back(candidate);
        }

        // Advance the mixed-radix counter.
        size_t k = 0;
        while (k < index.size()) {
            if (++index[k] < plan.knobs[k].values.size())
                break;
            index[k] = 0;
            ++k;
        }
        done = k == index.size();
    }

    std::vector<ABTestResult> results = evaluate(batch, spec);

    KnobConfig bestConfig = baseline;
    double bestMean = map.baselineMips;
    for (size_t i = 0; i < results.size(); ++i) {
        const ABTestResult &test = results[i];
        if (test.significant && test.welch.meanDiff > 0.0 &&
            test.samplesB.mean() > bestMean) {
            bestMean = test.samplesB.mean();
            bestConfig = candidates[i];
        }
    }

    for (const KnobPlan &knobPlan : plan.knobs) {
        KnobSweep sweep;
        sweep.id = knobPlan.id;
        KnobOutcome outcome;
        outcome.value = KnobValue::fromConfig(knobPlan.id, bestConfig);
        outcome.meanMips = bestMean;
        outcome.gainPercent =
            map.baselineMips > 0.0
                ? (bestMean / map.baselineMips - 1.0) * 100.0
                : 0.0;
        outcome.significant = !(bestConfig == baseline);
        outcome.isBaseline = bestConfig == baseline;
        sweep.outcomes.push_back(outcome);
        map.sweeps.push_back(std::move(sweep));
    }
    return map;
}

DesignSpaceMap
Usku::sweepHillClimb(const TestPlan &plan, const KnobConfig &baseline,
                     const InputSpec &spec)
{
    ScopedSpan span("sweep", "sweep.hillclimb");
    span.arg("knobs", static_cast<std::uint64_t>(plan.knobs.size()));

    DesignSpaceMap map;
    map.baseline = baseline;
    map.baselineMips = env_.trueMips(baseline);

    KnobConfig current = baseline;
    const int maxPasses = 3;
    for (int pass = 0; pass < maxPasses; ++pass) {
        bool moved = false;
        for (const KnobPlan &knobPlan : plan.knobs) {
            // All neighbor probes for one knob run as a parallel
            // batch; `current` only advances between batches, so the
            // climb's trajectory is schedule-independent.  Re-probes
            // of unchanged neighbors hit the memo cache.
            std::vector<const KnobValue *> probed;
            std::vector<Comparison> batch;
            for (const KnobValue &value : knobPlan.values) {
                KnobConfig candidate = current;
                value.applyTo(candidate);
                if (candidate == current)
                    continue;
                probed.push_back(&value);
                batch.push_back(Comparison{current, candidate});
            }
            std::vector<ABTestResult> results = evaluate(batch, spec);

            const KnobValue *bestValue = nullptr;
            double bestGain = 0.0;
            ABTestResult bestTest;
            for (size_t i = 0; i < results.size(); ++i) {
                const ABTestResult &test = results[i];
                if (test.significant && test.gainPercent() > bestGain) {
                    bestGain = test.gainPercent();
                    bestValue = probed[i];
                    bestTest = test;
                }
            }
            if (bestValue) {
                bestValue->applyTo(current);
                moved = true;
                KnobSweep sweep;
                sweep.id = knobPlan.id;
                sweep.outcomes.push_back(makeOutcome(*bestValue, bestTest));
                sweep.outcomes.back().significant = true;
                map.sweeps.push_back(std::move(sweep));
            }
        }
        if (!moved)
            break;
    }

    // Collapse to one final sweep entry per knob reflecting `current`.
    DesignSpaceMap collapsed;
    collapsed.baseline = baseline;
    collapsed.baselineMips = map.baselineMips;
    for (const KnobPlan &knobPlan : plan.knobs) {
        KnobSweep sweep;
        sweep.id = knobPlan.id;
        KnobOutcome outcome;
        outcome.value = KnobValue::fromConfig(knobPlan.id, current);
        outcome.meanMips = env_.trueMips(current);
        outcome.gainPercent =
            collapsed.baselineMips > 0.0
                ? (outcome.meanMips / collapsed.baselineMips - 1.0) * 100.0
                : 0.0;
        KnobValue baseValue = KnobValue::fromConfig(knobPlan.id, baseline);
        outcome.isBaseline = outcome.value == baseValue;
        outcome.significant = !outcome.isBaseline;
        sweep.outcomes.push_back(outcome);
        collapsed.sweeps.push_back(std::move(sweep));
    }
    return collapsed;
}

namespace {

/** Racing parameters derived from the spec: one confidence knob
 *  governs both the fixed protocol and the racing error budget. */
BaiOptions
baiOptionsFor(const InputSpec &spec)
{
    BaiOptions options;
    options.delta = 1.0 - spec.confidence;
    options.chunkSamples = spec.raceChunkSamples;
    // Elimination may strike after the very first chunk — the
    // Bonferroni-corrected interval is valid at any n >= 2, and the
    // first chunk is where racing earns its keep (a -10% arm should
    // cost one chunk, not the fixed protocol's min-sample floor).
    options.minSamplesPerArm = 2;
    options.maxSamplesPerArm = spec.maxSamplesPerTest;
    // The composer ignores wins under 0.05% (design_space_map.cc), so
    // arms provably below that threshold stop being paid for.
    options.futilityGain = 0.0005;
    return options;
}

/** A chunk result the racing engine cannot use as a verdict. */
bool
chunkAborted(const ABTestResult &result)
{
    return result.qosAborted || result.crashed || result.applyFailed;
}

} // namespace

DesignSpaceMap
Usku::sweepRace(const TestPlan &plan, const KnobConfig &baseline,
                const InputSpec &spec)
{
    ScopedSpan span("sweep", "sweep.race");
    span.arg("knobs", static_cast<std::uint64_t>(plan.knobs.size()));
    span.arg("chunk", spec.raceChunkSamples);

    DesignSpaceMap map;
    map.baseline = baseline;
    map.baselineMips = env_.trueMips(baseline);

    const PlatformSpec &platform = env_.platform();
    const BaiOptions baiOptions = baiOptionsFor(spec);

    // Group state: each knob races its candidate arms against each
    // other; the knob's baseline value sits outside the race (it is
    // the implicit zero-gain reference every arm is measured against).
    struct Arm
    {
        const KnobValue *value = nullptr;
        KnobConfig candidate;
        /** Latest cumulative window state (every pull returns the
         *  whole window so far). */
        ABTestResult last;
        /** Snapshot at the moment the fixed protocol would have
         *  stopped — bit-identical to a fixed-mode measurement of this
         *  comparison, because the window runs on the same stream with
         *  the same batch cadence. */
        ABTestResult fixed;
        double elapsedSec = 0.0;
        bool aborted = false;       //!< guardrail/crash withdrawal
        bool dead = false;          //!< window died after parking
    };
    struct Slot
    {
        const KnobValue *value = nullptr;
        bool isBaseline = false;
        size_t armIndex = 0;
    };
    struct Group
    {
        KnobId id = KnobId::CoreFrequency;
        std::vector<Slot> layout;
        std::vector<Arm> arms;
        std::unique_ptr<BaiRace> race;
        bool done = false;
    };

    std::vector<Group> groups(plan.knobs.size());
    for (size_t k = 0; k < plan.knobs.size(); ++k) {
        Group &group = groups[k];
        group.id = plan.knobs[k].id;
        for (const KnobValue &value : plan.knobs[k].values) {
            KnobConfig candidate = baseline;
            value.applyTo(candidate);
            if (candidate.canonical(platform) ==
                baseline.canonical(platform)) {
                group.layout.push_back(Slot{&value, true, 0});
                continue;
            }
            group.layout.push_back(
                Slot{&value, false, group.arms.size()});
            Arm arm;
            arm.value = &value;
            arm.candidate = candidate;
            group.arms.push_back(std::move(arm));
        }
        comparisons_ += group.arms.size();
        if (!group.arms.empty()) {
            group.race = std::make_unique<BaiRace>(group.arms.size(),
                                                   baiOptions);
        } else {
            group.done = true;
        }
    }

    auto budgetLeft = [&](const BaiArm &raced) {
        return raced.chunksPulled * baiOptions.chunkSamples <
               baiOptions.maxSamplesPerArm;
    };

    // Lockstep driver: every round collects one pull per contending
    // arm across *all* knobs into a single batch, so the pool stays
    // saturated even when most races have already decided.  Decisions
    // consume chunk statistics only — never scheduling order — so the
    // whole race replays identically at any thread count and on a
    // cache-served rerun.
    //
    // An arm *parks* the moment its continued window reaches the fixed
    // protocol's stop (significant at the spec confidence past the
    // minimum sample floor): the window runs on the comparison's own
    // stream with the fixed protocol's batch cadence, so the parked
    // snapshot is bit-identical to what a fixed-mode run would have
    // reported — winner agreement with fixed mode is structural, not
    // statistical.  Parked arms are exempt from elimination (the
    // composer ranks them); a settled positive verdict also ratchets
    // the futility floor, which is what retires trailing same-plateau
    // arms after hundreds of samples instead of tens of thousands.
    while (true) {
        std::vector<ChunkPull> batch;
        struct Ref
        {
            size_t group;
            size_t arm;
        };
        std::vector<Ref> refs;
        for (size_t g = 0; g < groups.size(); ++g) {
            Group &group = groups[g];
            if (group.done)
                continue;
            std::vector<std::size_t> want;
            for (size_t i = 0; i < group.arms.size(); ++i) {
                if (!group.race->arm(i).eliminated &&
                    !group.race->arm(i).parked &&
                    budgetLeft(group.race->arm(i)))
                    want.push_back(i);
            }
            // While any arm is still racing, the incumbent keeps
            // pulling even after parking: elimination compares against
            // the incumbent's interval, and a parked incumbent's
            // interval would stop shrinking — stalling every pending
            // elimination at whatever width it happened to have.  The
            // outcome still reports the parked snapshot; continuation
            // samples only sharpen the elimination bound.
            if (!want.empty()) {
                std::size_t incumbent = group.race->best();
                if (incumbent < group.arms.size() &&
                    group.race->arm(incumbent).parked &&
                    !group.arms[incumbent].dead &&
                    budgetLeft(group.race->arm(incumbent)))
                    want.push_back(incumbent);
            }
            if (want.empty()) {
                group.done = true;
                continue;
            }
            for (std::size_t i : want) {
                const BaiArm &raced = group.race->arm(i);
                ChunkPull pull;
                pull.task = Comparison{baseline, group.arms[i].candidate};
                pull.ordinal = raced.chunksPulled;
                pull.target =
                    (raced.chunksPulled + 1) * baiOptions.chunkSamples;
                pull.stopAtVerdict = !raced.parked;
                batch.push_back(std::move(pull));
                refs.push_back(Ref{g, i});
            }
        }
        if (batch.empty())
            break;

        std::vector<ABTestResult> results = evaluateChunks(batch, spec);

        // Absorb serially in batch order — the same order every thread
        // count produces — then run the elimination checks.  Parking
        // happens here, *before* elimination, so an arm that reached
        // its fixed verdict this round can no longer be struck.
        for (size_t t = 0; t < results.size(); ++t) {
            Group &group = groups[refs[t].group];
            Arm &arm = group.arms[refs[t].arm];
            const ABTestResult &result = results[t];
            arm.elapsedSec += result.elapsedSec;
            if (chunkAborted(result)) {
                if (group.race->arm(refs[t].arm).parked) {
                    // The verdict is already settled; the dead window
                    // only stops sharpening the elimination bound.
                    arm.dead = true;
                } else {
                    group.race->withdraw(refs[t].arm);
                    arm.aborted = true;
                }
                continue;
            }
            group.race->update(refs[t].arm, result.pairedDiffs);
            arm.last = result;
            if (!group.race->arm(refs[t].arm).parked &&
                result.significant &&
                result.samplesUsed >= spec.minSamplesPerTest) {
                arm.fixed = result;
                group.race->park(refs[t].arm);
                if (result.pairedDiffs.mean() > 0.0)
                    group.race->raiseFloor(result.pairedDiffs.mean());
            }
        }
        for (Group &group : groups) {
            if (!group.done)
                group.race->eliminateRound();
        }
    }

    // Synthesize outcomes in plan order (the serial loop keeps the
    // per-knob histogram's fp accumulation deterministic).
    std::uint64_t earlyStops = 0;
    std::uint64_t samplesSaved = 0;
    for (Group &group : groups) {
        KnobSweep sweep;
        sweep.id = group.id;
        KnobValue baselineValue = KnobValue::fromConfig(group.id, baseline);
        for (const Slot &slot : group.layout) {
            if (slot.isBaseline) {
                KnobOutcome outcome;
                outcome.value = baselineValue;
                outcome.meanMips = map.baselineMips;
                outcome.isBaseline = true;
                sweep.outcomes.push_back(outcome);
                continue;
            }
            const Arm &arm = group.arms[slot.armIndex];
            const BaiArm &raced = group.race->arm(slot.armIndex);
            if (arm.elapsedSec > 0.0) {
                metrics_
                    .histogram("sweep.knob_sim_sec." + knobKey(group.id),
                               MetricScope::Deterministic, 1.0, 1e8)
                    .add(arm.elapsedSec);
            }
            // A parked arm reports its fixed-protocol snapshot — the
            // bytes a fixed-mode run would have produced for this
            // comparison.  Everything else (eliminated, capped,
            // withdrawn) reports its final window state; the composer
            // skips eliminated arms regardless.
            const ABTestResult &state = raced.parked ? arm.fixed
                                                     : arm.last;
            KnobOutcome outcome;
            outcome.value = *slot.value;
            outcome.meanMips = state.samplesB.mean();
            outcome.gainPercent = state.gainPercent();
            outcome.gainCiPercent = state.gainCiPercent();
            outcome.significant = !arm.aborted && state.significant;
            outcome.samples = state.samplesUsed;
            outcome.eliminated = raced.eliminated;
            // Savings count what the race actually paid (the live
            // window, continuation pulls included) against the fixed
            // per-test cap the paper's protocol budgets.
            std::uint64_t paid = raced.gains.count();
            outcome.samplesSaved = spec.maxSamplesPerTest > paid
                                       ? spec.maxSamplesPerTest - paid
                                       : 0;
            samplesSaved += outcome.samplesSaved;
            debug("μSKU race: %s = %s → %+0.2f%% (n=%llu%s)",
                  knobKey(group.id).c_str(), slot.value->label.c_str(),
                  outcome.gainPercent,
                  static_cast<unsigned long long>(outcome.samples),
                  outcome.eliminated ? ", eliminated" : "");
            sweep.outcomes.push_back(outcome);
        }
        if (group.race)
            earlyStops += group.race->earlyStops();
        map.sweeps.push_back(std::move(sweep));
    }
    metrics_.counter("sweep.early_stops").add(earlyStops);
    metrics_.counter("sweep.samples_saved").add(samplesSaved);
    span.arg("early_stops", earlyStops);
    return map;
}

DesignSpaceMap
Usku::sweepHalving(const TestPlan &plan, const KnobConfig &baseline,
                   const InputSpec &spec)
{
    ScopedSpan span("sweep", "sweep.halving");
    span.arg("knobs", static_cast<std::uint64_t>(plan.knobs.size()));
    span.arg("chunk", spec.raceChunkSamples);

    // The joint candidate set is the same bounded cross product the
    // exhaustive sweep walks; halving just pays for it adaptively.
    constexpr size_t kMaxCombinations = 512;
    size_t combinations = 1;
    for (const KnobPlan &knobPlan : plan.knobs) {
        combinations *= knobPlan.values.size();
        if (combinations > kMaxCombinations) {
            fatal("μSKU: halving search would need %zu+ combinations "
                  "(limit %zu); restrict the knob list",
                  combinations, kMaxCombinations);
        }
    }

    DesignSpaceMap map;
    map.baseline = baseline;
    map.baselineMips = env_.trueMips(baseline);

    std::vector<size_t> index(plan.knobs.size(), 0);
    std::vector<KnobConfig> candidates;
    bool enumerated = plan.knobs.empty();
    while (!enumerated) {
        KnobConfig candidate = baseline;
        for (size_t k = 0; k < plan.knobs.size(); ++k)
            plan.knobs[k].values[index[k]].applyTo(candidate);
        if (!(candidate == baseline))
            candidates.push_back(candidate);

        size_t k = 0;
        while (k < index.size()) {
            if (++index[k] < plan.knobs[k].values.size())
                break;
            index[k] = 0;
            ++k;
        }
        enumerated = k == index.size();
    }
    comparisons_ += candidates.size();

    const BaiOptions baiOptions = baiOptionsFor(spec);
    KnobConfig bestConfig = baseline;
    double bestMean = map.baselineMips;
    std::uint64_t earlyStops = 0;
    std::uint64_t samplesSaved = 0;

    if (!candidates.empty()) {
        BaiHalving halving(candidates.size(), baiOptions);
        std::vector<ABTestResult> last(candidates.size());
        std::vector<bool> aborted(candidates.size(), false);
        const std::uint64_t budgetChunks = std::max<std::uint64_t>(
            1, baiOptions.maxSamplesPerArm / baiOptions.chunkSamples);

        // Each batch advances every survivor's continued window by one
        // chunk (a window accepts one pull at a time); a round's
        // allowance is spent as that many consecutive batches.  Triage
        // pulls never stop at a verdict — the halving rule, not the
        // fixed protocol, decides who survives.
        auto pullSurvivors = [&](const std::vector<std::size_t> &alive,
                                 bool stopAtVerdict) {
            std::vector<ChunkPull> batch;
            std::vector<std::size_t> refs;
            for (std::size_t i : alive) {
                if (aborted[i])
                    continue;
                const BaiArm &raced = halving.arm(i);
                if (raced.chunksPulled >= budgetChunks)
                    continue;
                ChunkPull pull;
                pull.task = Comparison{baseline, candidates[i]};
                pull.ordinal = raced.chunksPulled;
                pull.target = (raced.chunksPulled + 1) *
                              baiOptions.chunkSamples;
                pull.stopAtVerdict = stopAtVerdict;
                batch.push_back(std::move(pull));
                refs.push_back(i);
            }
            std::vector<ABTestResult> results =
                evaluateChunks(batch, spec);
            for (size_t t = 0; t < results.size(); ++t) {
                std::size_t i = refs[t];
                if (chunkAborted(results[t])) {
                    halving.withdraw(i);
                    aborted[i] = true;
                    continue;
                }
                halving.update(i, results[t].pairedDiffs);
                last[i] = results[t];
            }
        };

        while (!halving.decided()) {
            std::vector<std::size_t> alive = halving.pending();
            std::uint64_t allowance = halving.chunksThisRound();
            for (std::uint64_t c = 0; c < allowance; ++c)
                pullSurvivors(alive, /*stopAtVerdict=*/false);
            halving.halveRound();
        }

        // Resolve the finalist with the fixed protocol's stopping rule
        // (significance past the floor, or the give-up cap) so the
        // composition verdict means the same thing in every mode.
        std::size_t winner = halving.best();
        while (winner < candidates.size() && !aborted[winner]) {
            const BaiArm &raced = halving.arm(winner);
            bool capped = raced.chunksPulled >= budgetChunks;
            bool settled = last[winner].significant &&
                           last[winner].samplesUsed >=
                               spec.minSamplesPerTest;
            if (settled || capped)
                break;
            pullSurvivors({winner}, /*stopAtVerdict=*/true);
        }

        if (winner < candidates.size() && !aborted[winner]) {
            const ABTestResult &state = last[winner];
            if (state.significant && state.pairedDiffs.mean() > 0.0 &&
                state.samplesB.mean() > bestMean) {
                bestMean = state.samplesB.mean();
                bestConfig = candidates[winner];
            }
        }

        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const BaiArm &raced = halving.arm(i);
            std::uint64_t used = raced.gains.count();
            samplesSaved +=
                spec.maxSamplesPerTest > used
                    ? spec.maxSamplesPerTest - used
                    : 0;
            if (raced.eliminated && raced.chunksPulled < budgetChunks)
                earlyStops += 1;
        }
    }

    metrics_.counter("sweep.early_stops").add(earlyStops);
    metrics_.counter("sweep.samples_saved").add(samplesSaved);
    span.arg("early_stops", earlyStops);
    span.arg("combinations",
             static_cast<std::uint64_t>(candidates.size()));

    for (const KnobPlan &knobPlan : plan.knobs) {
        KnobSweep sweep;
        sweep.id = knobPlan.id;
        KnobOutcome outcome;
        outcome.value = KnobValue::fromConfig(knobPlan.id, bestConfig);
        outcome.meanMips = bestMean;
        outcome.gainPercent =
            map.baselineMips > 0.0
                ? (bestMean / map.baselineMips - 1.0) * 100.0
                : 0.0;
        outcome.significant = !(bestConfig == baseline);
        outcome.isBaseline = bestConfig == baseline;
        sweep.outcomes.push_back(outcome);
        map.sweeps.push_back(std::move(sweep));
    }
    return map;
}

} // namespace softsku
