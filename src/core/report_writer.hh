/**
 * @file
 * Markdown rendering of a μSKU report — the artifact an engineer files
 * with the soft-SKU deployment request: the design-space map with
 * confidence intervals, the composed configuration, the validation
 * verdict, and which knobs were skipped and why.
 */

#ifndef SOFTSKU_CORE_REPORT_WRITER_HH
#define SOFTSKU_CORE_REPORT_WRITER_HH

#include <string>

#include "core/usku.hh"

namespace softsku {

/** Render the full report as Markdown. */
std::string renderMarkdownReport(const UskuReport &report);

/**
 * Write the Markdown report to @p path; fatal() when the file cannot
 * be written (user-supplied path).
 */
void writeMarkdownReport(const UskuReport &report, const std::string &path);

} // namespace softsku

#endif // SOFTSKU_CORE_REPORT_WRITER_HH
