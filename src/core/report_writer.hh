/**
 * @file
 * Markdown rendering of a μSKU report — the artifact an engineer files
 * with the soft-SKU deployment request: the design-space map with
 * confidence intervals, the composed configuration, the validation
 * verdict, and which knobs were skipped and why.
 */

#ifndef SOFTSKU_CORE_REPORT_WRITER_HH
#define SOFTSKU_CORE_REPORT_WRITER_HH

#include <string>

#include "core/usku.hh"

namespace softsku {

/** Render the full report as Markdown. */
std::string renderMarkdownReport(const UskuReport &report);

/**
 * Write the Markdown report to @p path; fatal() when the file cannot
 * be written (user-supplied path).
 */
void writeMarkdownReport(const UskuReport &report, const std::string &path);

/**
 * The dashboard-emission file name for one target:
 * `<service>.<platform>.v<schema>.json` (schema from
 * kReportSchemaVersion).  The name is stable for a given target and
 * schema, so a dashboard polls a fixed path and a schema bump never
 * silently changes the shape behind an old name.
 */
std::string targetReportFileName(const std::string &service,
                                 const std::string &platform);

/**
 * Write @p doc (pretty-printed) to `<dir>/` under the target's
 * emission file name, creating @p dir if needed; fatal() when the
 * directory or file cannot be written.  Returns the full path.
 */
std::string emitTargetReport(const std::string &dir,
                             const std::string &service,
                             const std::string &platform, const Json &doc);

} // namespace softsku

#endif // SOFTSKU_CORE_REPORT_WRITER_HH
