#include "core/soft_sku.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/ab_cache.hh"
#include "obs/trace.hh"
#include "stats/robust.hh"
#include "stats/students_t.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

KnobConfig
SoftSkuGenerator::compose(const DesignSpaceMap &map) const
{
    KnobConfig config = map.baseline;
    for (const KnobSweep &sweep : map.sweeps) {
        const KnobOutcome *best = sweep.best();
        if (best && !best->isBaseline) {
            best->value.applyTo(config);
            inform("soft SKU: knob '%s' ← %s (+%.2f%% ± %.2f%%)",
                   knobKey(sweep.id).c_str(), best->value.label.c_str(),
                   best->gainPercent, best->gainCiPercent);
        }
    }
    return config;
}

namespace {

/** Noise-substream base for validation chunks; far away from the
 *  FNV-1a comparison stream ids the sweep engine uses. */
constexpr std::uint64_t kValidationSalt = 0x5A11DA7EDA7A0000ULL;

} // namespace

std::string
validationChunkKey(const PlatformSpec &platform, const KnobConfig &softSku,
                   const KnobConfig &reference, double durationSec,
                   double sampleEverySec, std::uint64_t chunk)
{
    // Doubles as bit patterns: keys are equal iff the windows are
    // bit-for-bit the same.
    return format("validate %s vs %s dur=%s every=%s #%llu",
                  softSku.canonical(platform).describe().c_str(),
                  reference.canonical(platform).describe().c_str(),
                  hexBits(durationSec).c_str(),
                  hexBits(sampleEverySec).c_str(),
                  static_cast<unsigned long long>(chunk));
}

ValidationResult
SoftSkuGenerator::validate(ProductionEnvironment &env,
                           const KnobConfig &softSku,
                           const KnobConfig &reference, double durationSec,
                           OdsStore &ods, double sampleEverySec,
                           ThreadPool *pool, MetricsRegistry *metrics,
                           ValidationCache *cache) const
{
    ValidationResult result;
    result.durationSec = durationSec;

    // Resolve both ground truths once up front; this also warms the
    // shared simulation cache before chunks fan out across workers.
    // Any missing configurations go through the batched core together.
    env.prepareConfigs({reference, softSku}, metrics);
    const double trueRef = env.trueMips(reference);
    const double trueSku = env.trueMips(softSku);

    // Fleet QPS tracks MIPS for MIPS-valid services; both sides face
    // identical live load.  Samples land in ODS exactly as the fleet
    // telemetry pipeline would record them.
    //
    // The window is cut into fixed ~3 h chunks — the chunk count
    // depends only on the window, never on the worker count — and each
    // chunk measures in its own environment substream.  Serial and
    // parallel runs therefore produce the same per-chunk results and
    // merge them in the same order: bit-identical at any job count.
    const std::uint64_t totalSamples = static_cast<std::uint64_t>(
        std::ceil(durationSec / sampleEverySec));
    const std::uint64_t perChunk = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(3.0 * 3600.0 / sampleEverySec));
    const std::uint64_t chunkCount =
        (totalSamples + perChunk - 1) / perChunk;

    const bool hostile = env.faults().any();
    std::vector<ValidationChunk> chunks(chunkCount);

    // Resolve cache hits on the driver thread before any fan-out: the
    // memo is not synchronized, and a replayed chunk must look exactly
    // like a measured one to everything downstream.
    std::vector<std::string> keys(cache ? chunkCount : 0);
    std::vector<std::size_t> missing;
    missing.reserve(chunkCount);
    for (std::size_t c = 0; c < chunkCount; ++c) {
        if (!cache) {
            missing.push_back(c);
            continue;
        }
        keys[c] = validationChunkKey(env.platform(), softSku, reference,
                                     durationSec, sampleEverySec,
                                     static_cast<std::uint64_t>(c));
        auto hit = cache->find(keys[c]);
        if (hit != cache->end()) {
            chunks[c] = hit->second;
            ScopedSpan span("validate", "validate.cache_hit",
                            {kTraceValidate,
                             static_cast<std::uint64_t>(c)});
            span.arg("samples", chunks[c].samples);
        } else {
            missing.push_back(c);
        }
    }

    const std::uint64_t runTag = Tracer::currentRunTag();
    auto measureChunk = [&](std::size_t c) {
        // Explicit root path: the chunk index alone places this span
        // deterministically, whichever worker runs it — under the
        // driver's run tag, which must be re-established because on a
        // shared pool this thread may carry another run's tag.
        TraceTagScope tag(runTag);
        ScopedSpan span("validate", "validate.chunk",
                        {kTraceValidate, static_cast<std::uint64_t>(c)});
        ProductionEnvironment slice =
            env.clone(kValidationSalt + static_cast<std::uint64_t>(c));
        ValidationChunk &chunk = chunks[c];
        const std::uint64_t begin = c * perChunk;
        const std::uint64_t end =
            std::min(totalSamples, begin + perChunk);
        std::vector<double> ratios;
        for (std::uint64_t i = begin; i < end; ++i) {
            double clock =
                static_cast<double>(i + 1) * sampleEverySec;
            PairedSample sample =
                slice.samplePairTruth(trueRef, trueSku, clock);
            if (sample.dropped) {
                ++chunk.dropped;
                continue;
            }
            // Raw telemetry lands in ODS even when the analysis later
            // rejects it — exactly what a real pipeline records.
            chunk.points.push_back({clock, sample.mipsA, sample.mipsB});
            if (hostile)
                ratios.push_back(sample.mipsA > 0.0
                                     ? sample.mipsB / sample.mipsA
                                     : std::numeric_limits<double>::
                                           infinity());
        }
        if (!hostile) {
            for (const auto &point : chunk.points) {
                chunk.diffs.add(point[2] - point[1]);
                chunk.refStat.add(point[1]);
                ++chunk.samples;
            }
            span.arg("samples", chunk.samples);
            span.arg("dropped", chunk.dropped);
            return;
        }
        // Hostile fleet: corrupted readings (spikes, zeros) would blow
        // up the t-test's variance.  Reject pairs whose ratio sits
        // many MADs from the chunk median — the same defense the A/B
        // tester applies — before anything reaches the statistics.
        MadGate gate(ratios, 8.0);
        for (size_t i = 0; i < chunk.points.size(); ++i) {
            if (!gate.keeps(ratios[i])) {
                ++chunk.rejected;
                continue;
            }
            chunk.diffs.add(chunk.points[i][2] - chunk.points[i][1]);
            chunk.refStat.add(chunk.points[i][1]);
            ++chunk.samples;
        }
        span.arg("samples", chunk.samples);
        span.arg("dropped", chunk.dropped);
        span.arg("rejected", chunk.rejected);
    };

    auto measureMissing = [&](std::size_t m) { measureChunk(missing[m]); };
    if (pool && missing.size() > 1)
        pool->parallelFor(missing.size(), measureMissing);
    else
        for (std::size_t m = 0; m < missing.size(); ++m)
            measureMissing(m);
    if (cache)
        for (std::size_t c : missing)
            cache->emplace(keys[c], chunks[c]);

    RunningStat diffs;
    RunningStat refStat;
    for (const ValidationChunk &chunk : chunks) {
        for (const auto &point : chunk.points) {
            ods.append("qps.reference", point[0], point[1]);
            ods.append("qps.softsku", point[0], point[2]);
        }
        diffs.merge(chunk.diffs);
        refStat.merge(chunk.refStat);
        result.samples += chunk.samples;
        result.samplesDropped += chunk.dropped;
        result.samplesRejected += chunk.rejected;
    }
    if (metrics) {
        metrics->counter("validation.chunks").add(chunkCount);
        metrics->counter("validation.samples").add(result.samples);
        metrics->counter("validation.samples_dropped")
            .add(result.samplesDropped);
        metrics->counter("validation.samples_rejected")
            .add(result.samplesRejected);
    }

    WelchResult test = pairedTTest(diffs, 0.95);
    if (refStat.mean() > 0.0) {
        result.meanGainPercent = diffs.mean() / refStat.mean() * 100.0;
        result.gainCiPercent =
            test.diffHalfWidth / refStat.mean() * 100.0;
    }
    result.stable = test.significant && diffs.mean() > 0.0;
    return result;
}

} // namespace softsku
