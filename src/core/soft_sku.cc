#include "core/soft_sku.hh"

#include "stats/students_t.hh"
#include "util/logging.hh"

namespace softsku {

KnobConfig
SoftSkuGenerator::compose(const DesignSpaceMap &map) const
{
    KnobConfig config = map.baseline;
    for (const KnobSweep &sweep : map.sweeps) {
        const KnobOutcome *best = sweep.best();
        if (best && !best->isBaseline) {
            best->value.applyTo(config);
            inform("soft SKU: knob '%s' ← %s (+%.2f%% ± %.2f%%)",
                   knobKey(sweep.id).c_str(), best->value.label.c_str(),
                   best->gainPercent, best->gainCiPercent);
        }
    }
    return config;
}

ValidationResult
SoftSkuGenerator::validate(ProductionEnvironment &env,
                           const KnobConfig &softSku,
                           const KnobConfig &reference, double durationSec,
                           OdsStore &ods, double sampleEverySec) const
{
    ValidationResult result;
    result.durationSec = durationSec;

    // Fleet QPS tracks MIPS for MIPS-valid services; both sides face
    // identical live load.  Samples land in ODS exactly as the fleet
    // telemetry pipeline would record them.
    RunningStat diffs;
    RunningStat refStat;
    double clock = 0.0;
    while (clock < durationSec) {
        clock += sampleEverySec;
        PairedSample sample = env.samplePair(reference, softSku, clock);
        ods.append("qps.reference", clock, sample.mipsA);
        ods.append("qps.softsku", clock, sample.mipsB);
        diffs.add(sample.mipsB - sample.mipsA);
        refStat.add(sample.mipsA);
        ++result.samples;
    }

    WelchResult test = pairedTTest(diffs, 0.95);
    if (refStat.mean() > 0.0) {
        result.meanGainPercent = diffs.mean() / refStat.mean() * 100.0;
        result.gainCiPercent =
            test.diffHalfWidth / refStat.mean() * 100.0;
    }
    result.stable = test.significant && diffs.mean() > 0.0;
    return result;
}

} // namespace softsku
