#include "core/soft_sku.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/trace.hh"
#include "stats/students_t.hh"
#include "util/logging.hh"

namespace softsku {

KnobConfig
SoftSkuGenerator::compose(const DesignSpaceMap &map) const
{
    KnobConfig config = map.baseline;
    for (const KnobSweep &sweep : map.sweeps) {
        const KnobOutcome *best = sweep.best();
        if (best && !best->isBaseline) {
            best->value.applyTo(config);
            inform("soft SKU: knob '%s' ← %s (+%.2f%% ± %.2f%%)",
                   knobKey(sweep.id).c_str(), best->value.label.c_str(),
                   best->gainPercent, best->gainCiPercent);
        }
    }
    return config;
}

namespace {

/** Noise-substream base for validation chunks; far away from the
 *  FNV-1a comparison stream ids the sweep engine uses. */
constexpr std::uint64_t kValidationSalt = 0x5A11DA7EDA7A0000ULL;

/** What one validation chunk measured, merged in chunk order. */
struct ValidationChunk
{
    RunningStat diffs;
    RunningStat refStat;
    /** (time, refMips, skuMips) in sample order, for the ODS replay. */
    std::vector<std::array<double, 3>> points;
    std::uint64_t samples = 0;
    std::uint64_t dropped = 0;
    std::uint64_t rejected = 0;
};

/** Median of a scratch vector (reordered in place). */
double
medianOf(std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    return values[mid];
}

} // namespace

ValidationResult
SoftSkuGenerator::validate(ProductionEnvironment &env,
                           const KnobConfig &softSku,
                           const KnobConfig &reference, double durationSec,
                           OdsStore &ods, double sampleEverySec,
                           ThreadPool *pool, MetricsRegistry *metrics) const
{
    ValidationResult result;
    result.durationSec = durationSec;

    // Resolve both ground truths once up front; this also warms the
    // shared simulation cache before chunks fan out across workers.
    const double trueRef = env.trueMips(reference);
    const double trueSku = env.trueMips(softSku);

    // Fleet QPS tracks MIPS for MIPS-valid services; both sides face
    // identical live load.  Samples land in ODS exactly as the fleet
    // telemetry pipeline would record them.
    //
    // The window is cut into fixed ~3 h chunks — the chunk count
    // depends only on the window, never on the worker count — and each
    // chunk measures in its own environment substream.  Serial and
    // parallel runs therefore produce the same per-chunk results and
    // merge them in the same order: bit-identical at any job count.
    const std::uint64_t totalSamples = static_cast<std::uint64_t>(
        std::ceil(durationSec / sampleEverySec));
    const std::uint64_t perChunk = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(3.0 * 3600.0 / sampleEverySec));
    const std::uint64_t chunkCount =
        (totalSamples + perChunk - 1) / perChunk;

    const bool hostile = env.faults().any();
    std::vector<ValidationChunk> chunks(chunkCount);
    const std::uint64_t runTag = Tracer::currentRunTag();
    auto measureChunk = [&](std::size_t c) {
        // Explicit root path: the chunk index alone places this span
        // deterministically, whichever worker runs it — under the
        // driver's run tag, which must be re-established because on a
        // shared pool this thread may carry another run's tag.
        TraceTagScope tag(runTag);
        ScopedSpan span("validate", "validate.chunk",
                        {kTraceValidate, static_cast<std::uint64_t>(c)});
        ProductionEnvironment slice =
            env.clone(kValidationSalt + static_cast<std::uint64_t>(c));
        ValidationChunk &chunk = chunks[c];
        const std::uint64_t begin = c * perChunk;
        const std::uint64_t end =
            std::min(totalSamples, begin + perChunk);
        std::vector<double> ratios;
        for (std::uint64_t i = begin; i < end; ++i) {
            double clock =
                static_cast<double>(i + 1) * sampleEverySec;
            PairedSample sample =
                slice.samplePairTruth(trueRef, trueSku, clock);
            if (sample.dropped) {
                ++chunk.dropped;
                continue;
            }
            // Raw telemetry lands in ODS even when the analysis later
            // rejects it — exactly what a real pipeline records.
            chunk.points.push_back({clock, sample.mipsA, sample.mipsB});
            if (hostile)
                ratios.push_back(sample.mipsA > 0.0
                                     ? sample.mipsB / sample.mipsA
                                     : std::numeric_limits<double>::
                                           infinity());
        }
        if (!hostile) {
            for (const auto &point : chunk.points) {
                chunk.diffs.add(point[2] - point[1]);
                chunk.refStat.add(point[1]);
                ++chunk.samples;
            }
            span.arg("samples", chunk.samples);
            span.arg("dropped", chunk.dropped);
            return;
        }
        // Hostile fleet: corrupted readings (spikes, zeros) would blow
        // up the t-test's variance.  Reject pairs whose ratio sits
        // many MADs from the chunk median — the same defense the A/B
        // tester applies — before anything reaches the statistics.
        std::vector<double> deviations;
        for (double r : ratios)
            if (std::isfinite(r))
                deviations.push_back(r);
        double median = medianOf(deviations);
        for (double &d : deviations)
            d = std::abs(d - median);
        double mad = medianOf(deviations);
        double cutoff = 8.0 * std::max(mad, 1e-6) + 1e-12;
        for (size_t i = 0; i < chunk.points.size(); ++i) {
            if (!std::isfinite(ratios[i]) ||
                std::abs(ratios[i] - median) > cutoff) {
                ++chunk.rejected;
                continue;
            }
            chunk.diffs.add(chunk.points[i][2] - chunk.points[i][1]);
            chunk.refStat.add(chunk.points[i][1]);
            ++chunk.samples;
        }
        span.arg("samples", chunk.samples);
        span.arg("dropped", chunk.dropped);
        span.arg("rejected", chunk.rejected);
    };

    if (pool && chunkCount > 1)
        pool->parallelFor(chunkCount, measureChunk);
    else
        for (std::size_t c = 0; c < chunkCount; ++c)
            measureChunk(c);

    RunningStat diffs;
    RunningStat refStat;
    for (const ValidationChunk &chunk : chunks) {
        for (const auto &point : chunk.points) {
            ods.append("qps.reference", point[0], point[1]);
            ods.append("qps.softsku", point[0], point[2]);
        }
        diffs.merge(chunk.diffs);
        refStat.merge(chunk.refStat);
        result.samples += chunk.samples;
        result.samplesDropped += chunk.dropped;
        result.samplesRejected += chunk.rejected;
    }
    if (metrics) {
        metrics->counter("validation.chunks").add(chunkCount);
        metrics->counter("validation.samples").add(result.samples);
        metrics->counter("validation.samples_dropped")
            .add(result.samplesDropped);
        metrics->counter("validation.samples_rejected")
            .add(result.samplesRejected);
    }

    WelchResult test = pairedTTest(diffs, 0.95);
    if (refStat.mean() > 0.0) {
        result.meanGainPercent = diffs.mean() / refStat.mean() * 100.0;
        result.gainCiPercent =
            test.diffHalfWidth / refStat.mean() * 100.0;
    }
    result.stable = test.significant && diffs.mean() > 0.0;
    return result;
}

} // namespace softsku
