#include "core/ab_test.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/trace.hh"
#include "stats/robust.hh"
#include "util/logging.hh"

namespace softsku {

double
ABTestResult::gainPercent() const
{
    if (pairedDiffs.count() > 0)
        return pairedDiffs.mean() * 100.0;
    if (samplesA.mean() <= 0.0)
        return 0.0;
    return (samplesB.mean() / samplesA.mean() - 1.0) * 100.0;
}

double
ABTestResult::gainCiPercent() const
{
    return welch.diffHalfWidth * 100.0;
}

MeasureSession::MeasureSession(ProductionEnvironment &env,
                               const InputSpec &spec,
                               const RobustnessPolicy &policy,
                               const KnobConfig &baseline,
                               const KnobConfig &candidate, double startSec)
    : env_(env), spec_(spec), policy_(policy), baseline_(baseline),
      candidate_(candidate), startSec_(startSec), clock_(startSec)
{
    result_.configA = baseline_;
    result_.configB = candidate_;
}

ABTestResult
MeasureSession::pullTo(std::uint64_t targetAccepted,
                       bool stopOnSignificance)
{
    const double spacing = spec_.sampleSpacingSec;
    const double pullStartClock = clock_;
    const std::uint64_t pullStartAccepted = result_.samplesUsed;
    const FaultTelemetry faultsBefore = result_.faults;

    if (!opened_) {
        opened_ = true;
        // Resolve the ground truths once per window: samplePairTruth
        // keeps the tens-of-thousands-samples loop free of config
        // hashing.
        trueA_ = env_.trueMips(baseline_);
        trueB_ = env_.trueMips(candidate_);

        // Pushing the candidate config can itself fail on a hostile
        // fleet; the operator only notices once the warm-up window has
        // elapsed.
        if (env_.drawApplyFailure()) {
            result_.applyFailed = true;
            result_.faults.applyFailures = 1;
            clock_ += static_cast<double>(spec_.warmupSamples) * spacing;
        } else {
            // Warm-up: both servers run the new configuration for a few
            // minutes before observations count (cold-start bias,
            // Sec. 4).
            for (std::uint64_t i = 0; i < spec_.warmupSamples; ++i) {
                clock_ += spacing;
                (void)env_.samplePairTruth(trueA_, trueB_, clock_);
            }
        }
    }

    // Sequential sampling in batches; stop early once the difference is
    // significant and a minimum sample count is reached (for a racing
    // pull past its verdict, the target count alone stops it).  Dropped
    // and rejected samples cost wall clock without advancing the count,
    // so a lossy fleet is bounded by the attempt cap instead.  The cap
    // scales with the requested target, so an interrupted-and-resumed
    // window binds exactly where one uninterrupted run would.
    const std::uint64_t batch = 100;
    const std::uint64_t maxAttempts = targetAccepted * 4;

    // Per-batch scratch for the robust filter.
    std::vector<double> ratios;
    std::vector<PairedSample> kept;

    while (!dead() && result_.samplesUsed < targetAccepted &&
           attempts_ < maxAttempts) {
        ratios.clear();
        kept.clear();
        for (std::uint64_t i = 0; i < batch; ++i) {
            ++attempts_;
            clock_ += spacing;
            // A server lost mid-pair kills the whole comparison; the
            // sweep engine re-runs it on a replacement (fresh stream).
            if (env_.drawCrash(spacing)) {
                result_.crashed = true;
                result_.faults.crashes = 1;
                break;
            }
            PairedSample sample =
                env_.samplePairTruth(trueA_, trueB_, clock_);
            if (sample.dropped) {
                ++result_.faults.samplesDropped;
                continue;
            }
            result_.faults.samplesCorrupted +=
                static_cast<std::uint64_t>(sample.corruptedA) +
                static_cast<std::uint64_t>(sample.corruptedB);
            // Simultaneous measurement is what pairing buys: the
            // common-mode load factor is multiplicative and cancels
            // exactly in the per-pair ratio.
            double ratio = sample.mipsB / sample.mipsA - 1.0;
            if (!std::isfinite(ratio)) {
                // A zeroed reading produces garbage; no real pipeline
                // would feed it to the t-test.
                ++result_.faults.samplesDropped;
                continue;
            }
            if (policy_.robustFilter) {
                ratios.push_back(ratio);
                kept.push_back(sample);
            } else {
                result_.samplesA.add(sample.mipsA);
                result_.samplesB.add(sample.mipsB);
                result_.pairedDiffs.add(ratio);
                ++result_.samplesUsed;
            }
        }

        if (policy_.robustFilter && !ratios.empty()) {
            // Batch-local MAD rejection: corrupted spikes/zeros sit
            // tens of MADs out while genuine samples survive.
            MadGate gate(ratios, policy_.madCutoff);
            for (size_t i = 0; i < ratios.size(); ++i) {
                if (!gate.keeps(ratios[i])) {
                    ++result_.faults.samplesRejected;
                    continue;
                }
                result_.samplesA.add(kept[i].mipsA);
                result_.samplesB.add(kept[i].mipsB);
                result_.pairedDiffs.add(ratios[i]);
                ++result_.samplesUsed;
            }
        }

        if (!stopOnSignificance || result_.pairedDiffs.count() < 2)
            continue;
        result_.welch =
            pairedTTest(result_.pairedDiffs, spec_.confidence);
        if (result_.samplesUsed >= spec_.minSamplesPerTest &&
            result_.welch.significant) {
            result_.significant = true;
            break;
        }
    }

    // Cumulative statistics, incremental accounting: the caller sums
    // elapsedSec/samplesAccepted/faults over pulls without
    // double-counting the prefix.
    ABTestResult out = result_;
    if (!out.significant && out.pairedDiffs.count() >= 2) {
        // The paper's give-up rule: at the end of a window with no
        // confident separation, conclude from whatever accumulated.
        // Assessed on the returned copy only — a transient verdict at
        // one pull boundary must not stick to the window, or a resumed
        // pull would report "significant" where the fixed protocol's
        // identical in-loop check (which requires the minimum sample
        // floor) kept measuring.
        out.welch = pairedTTest(out.pairedDiffs, spec_.confidence);
        out.significant = out.welch.significant;
    }
    if (out.crashed)
        out.significant = false;
    out.elapsedSec = clock_ - pullStartClock;
    out.samplesAccepted = result_.samplesUsed - pullStartAccepted;
    out.faults.samplesDropped -= faultsBefore.samplesDropped;
    out.faults.samplesCorrupted -= faultsBefore.samplesCorrupted;
    out.faults.samplesRejected -= faultsBefore.samplesRejected;
    out.faults.crashes -= faultsBefore.crashes;
    out.faults.applyFailures -= faultsBefore.applyFailures;
    return out;
}

ABTester::ABTester(ProductionEnvironment &env, const InputSpec &spec,
                   const RobustnessPolicy &policy,
                   MetricsRegistry *metrics)
    : env_(env), spec_(spec), policy_(policy), metrics_(metrics)
{
}

ABTestResult
ABTester::compare(const KnobConfig &baseline, const KnobConfig &candidate)
{
    ABTestResult result = measure(baseline, candidate, clockSec_);
    clockSec_ += result.elapsedSec;
    return result;
}

ABTestResult
ABTester::compareAt(const KnobConfig &baseline, const KnobConfig &candidate,
                    double startSec)
{
    return measure(baseline, candidate, startSec);
}

ABTestResult
ABTester::measure(const KnobConfig &baseline, const KnobConfig &candidate,
                  double startSec)
{
    return measureSamples(baseline, candidate, startSec,
                          spec_.maxSamplesPerTest,
                          /*stopOnSignificance=*/true);
}

ABTestResult
ABTester::measureSamples(const KnobConfig &baseline,
                         const KnobConfig &candidate, double startSec,
                         std::uint64_t maxSamples, bool stopOnSignificance)
{
    // Nests under the sweep's comparison span when one is open on this
    // thread; retries therefore show up as sibling measure spans.
    ScopedSpan span("ab", "ab.measure");

    MeasureSession session(env_, spec_, policy_, baseline, candidate,
                           startSec);
    ABTestResult result = session.pullTo(maxSamples, stopOnSignificance);
    if (result.applyFailed) {
        span.arg("sim_sec", result.elapsedSec);
        span.arg("apply_failed", true);
        return result;
    }

    if (metrics_) {
        metrics_->counter("ab.samples_accepted").add(result.samplesUsed);
        metrics_->counter("ab.samples_rejected")
            .add(result.faults.samplesRejected);
        metrics_->counter("ab.samples_dropped")
            .add(result.faults.samplesDropped);
    }
    span.arg("samples", result.samplesUsed);
    span.arg("sim_sec", result.elapsedSec);
    span.arg("significant", result.significant);
    if (result.crashed)
        span.arg("crashed", true);
    return result;
}

} // namespace softsku
