#include "core/ab_test.hh"

#include <cmath>

#include "util/logging.hh"

namespace softsku {

double
ABTestResult::gainPercent() const
{
    if (pairedDiffs.count() > 0)
        return pairedDiffs.mean() * 100.0;
    if (samplesA.mean() <= 0.0)
        return 0.0;
    return (samplesB.mean() / samplesA.mean() - 1.0) * 100.0;
}

double
ABTestResult::gainCiPercent() const
{
    return welch.diffHalfWidth * 100.0;
}

ABTester::ABTester(ProductionEnvironment &env, const InputSpec &spec)
    : env_(env), spec_(spec)
{
}

ABTestResult
ABTester::compare(const KnobConfig &baseline, const KnobConfig &candidate)
{
    ABTestResult result;
    result.configA = baseline;
    result.configB = candidate;

    const double spacing = spec_.sampleSpacingSec;
    double start = clockSec_;

    // Warm-up: both servers run the new configuration for a few
    // minutes before observations count (cold-start bias, Sec. 4).
    for (std::uint64_t i = 0; i < spec_.warmupSamples; ++i) {
        clockSec_ += spacing;
        (void)env_.samplePair(baseline, candidate, clockSec_);
    }

    // Sequential sampling in batches; stop early once the difference
    // is significant and a minimum sample count is reached.
    const std::uint64_t batch = 100;
    while (result.samplesUsed < spec_.maxSamplesPerTest) {
        for (std::uint64_t i = 0; i < batch; ++i) {
            clockSec_ += spacing;
            PairedSample sample =
                env_.samplePair(baseline, candidate, clockSec_);
            result.samplesA.add(sample.mipsA);
            result.samplesB.add(sample.mipsB);
            // Simultaneous measurement is what pairing buys: the
            // common-mode load factor is multiplicative and cancels
            // exactly in the per-pair ratio.
            result.pairedDiffs.add(sample.mipsB / sample.mipsA - 1.0);
        }
        result.samplesUsed += batch;

        result.welch =
            pairedTTest(result.pairedDiffs, spec_.confidence);
        if (result.samplesUsed >= spec_.minSamplesPerTest &&
            result.welch.significant) {
            result.significant = true;
            break;
        }
    }

    if (!result.significant) {
        // The paper's give-up rule: after ~30k observations with no
        // 95%-confidence separation, conclude "no difference".
        result.welch = pairedTTest(result.pairedDiffs, spec_.confidence);
        result.significant = result.welch.significant;
    }
    result.elapsedSec = clockSec_ - start;
    return result;
}

} // namespace softsku
