#include "core/ab_test.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace softsku {

namespace {

/** Median of a scratch vector (reordered in place). */
double
medianOf(std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    return values[mid];
}

} // namespace

double
ABTestResult::gainPercent() const
{
    if (pairedDiffs.count() > 0)
        return pairedDiffs.mean() * 100.0;
    if (samplesA.mean() <= 0.0)
        return 0.0;
    return (samplesB.mean() / samplesA.mean() - 1.0) * 100.0;
}

double
ABTestResult::gainCiPercent() const
{
    return welch.diffHalfWidth * 100.0;
}

ABTester::ABTester(ProductionEnvironment &env, const InputSpec &spec,
                   const RobustnessPolicy &policy,
                   MetricsRegistry *metrics)
    : env_(env), spec_(spec), policy_(policy), metrics_(metrics)
{
}

ABTestResult
ABTester::compare(const KnobConfig &baseline, const KnobConfig &candidate)
{
    ABTestResult result = measure(baseline, candidate, clockSec_);
    clockSec_ += result.elapsedSec;
    return result;
}

ABTestResult
ABTester::compareAt(const KnobConfig &baseline, const KnobConfig &candidate,
                    double startSec)
{
    return measure(baseline, candidate, startSec);
}

ABTestResult
ABTester::measure(const KnobConfig &baseline, const KnobConfig &candidate,
                  double startSec)
{
    // Nests under the sweep's comparison span when one is open on this
    // thread; retries therefore show up as sibling measure spans.
    ScopedSpan span("ab", "ab.measure");

    ABTestResult result;
    result.configA = baseline;
    result.configB = candidate;

    const double spacing = spec_.sampleSpacingSec;
    double clock = startSec;

    // Resolve the ground truths once per test: samplePairTruth keeps
    // the tens-of-thousands-samples loop free of config hashing.
    const double trueA = env_.trueMips(baseline);
    const double trueB = env_.trueMips(candidate);

    // Pushing the candidate config can itself fail on a hostile fleet;
    // the operator only notices once the warm-up window has elapsed.
    if (env_.drawApplyFailure()) {
        result.applyFailed = true;
        result.faults.applyFailures = 1;
        result.elapsedSec =
            static_cast<double>(spec_.warmupSamples) * spacing;
        span.arg("sim_sec", result.elapsedSec);
        span.arg("apply_failed", true);
        return result;
    }

    // Warm-up: both servers run the new configuration for a few
    // minutes before observations count (cold-start bias, Sec. 4).
    for (std::uint64_t i = 0; i < spec_.warmupSamples; ++i) {
        clock += spacing;
        (void)env_.samplePairTruth(trueA, trueB, clock);
    }

    // Sequential sampling in batches; stop early once the difference
    // is significant and a minimum sample count is reached.  Dropped
    // and rejected samples cost wall clock without advancing the
    // count, so a lossy fleet is bounded by the attempt cap instead.
    const std::uint64_t batch = 100;
    const std::uint64_t maxAttempts = spec_.maxSamplesPerTest * 4;
    std::uint64_t attempts = 0;

    // Per-batch scratch for the robust filter.
    std::vector<double> ratios;
    std::vector<PairedSample> kept;
    std::vector<double> deviations;

    while (result.samplesUsed < spec_.maxSamplesPerTest &&
           attempts < maxAttempts && !result.crashed) {
        ratios.clear();
        kept.clear();
        for (std::uint64_t i = 0; i < batch; ++i) {
            ++attempts;
            clock += spacing;
            // A server lost mid-pair kills the whole comparison; the
            // sweep engine re-runs it on a replacement (fresh stream).
            if (env_.drawCrash(spacing)) {
                result.crashed = true;
                result.faults.crashes = 1;
                break;
            }
            PairedSample sample =
                env_.samplePairTruth(trueA, trueB, clock);
            if (sample.dropped) {
                ++result.faults.samplesDropped;
                continue;
            }
            result.faults.samplesCorrupted +=
                static_cast<std::uint64_t>(sample.corruptedA) +
                static_cast<std::uint64_t>(sample.corruptedB);
            // Simultaneous measurement is what pairing buys: the
            // common-mode load factor is multiplicative and cancels
            // exactly in the per-pair ratio.
            double ratio = sample.mipsB / sample.mipsA - 1.0;
            if (!std::isfinite(ratio)) {
                // A zeroed reading produces garbage; no real pipeline
                // would feed it to the t-test.
                ++result.faults.samplesDropped;
                continue;
            }
            if (policy_.robustFilter) {
                ratios.push_back(ratio);
                kept.push_back(sample);
            } else {
                result.samplesA.add(sample.mipsA);
                result.samplesB.add(sample.mipsB);
                result.pairedDiffs.add(ratio);
                ++result.samplesUsed;
            }
        }

        if (policy_.robustFilter && !ratios.empty()) {
            // Batch-local MAD rejection: corrupted spikes/zeros sit
            // tens of MADs out while genuine samples survive.
            deviations = ratios;
            double median = medianOf(deviations);
            for (double &d : deviations)
                d = std::abs(d - median);
            double mad = medianOf(deviations);
            // Floor the scale so a freak zero-spread batch cannot
            // reject everything.
            double cutoff =
                policy_.madCutoff * std::max(mad, 1e-6) + 1e-12;
            for (size_t i = 0; i < ratios.size(); ++i) {
                if (std::abs(ratios[i] - median) > cutoff) {
                    ++result.faults.samplesRejected;
                    continue;
                }
                result.samplesA.add(kept[i].mipsA);
                result.samplesB.add(kept[i].mipsB);
                result.pairedDiffs.add(ratios[i]);
                ++result.samplesUsed;
            }
        }

        if (result.pairedDiffs.count() < 2)
            continue;
        result.welch =
            pairedTTest(result.pairedDiffs, spec_.confidence);
        if (result.samplesUsed >= spec_.minSamplesPerTest &&
            result.welch.significant) {
            result.significant = true;
            break;
        }
    }

    if (!result.significant && result.pairedDiffs.count() >= 2) {
        // The paper's give-up rule: after ~30k observations with no
        // 95%-confidence separation, conclude "no difference".
        result.welch = pairedTTest(result.pairedDiffs, spec_.confidence);
        result.significant = result.welch.significant;
    }
    if (result.crashed)
        result.significant = false;
    result.elapsedSec = clock - startSec;
    result.samplesAccepted = result.samplesUsed;

    if (metrics_) {
        metrics_->counter("ab.samples_accepted").add(result.samplesUsed);
        metrics_->counter("ab.samples_rejected")
            .add(result.faults.samplesRejected);
        metrics_->counter("ab.samples_dropped")
            .add(result.faults.samplesDropped);
    }
    span.arg("samples", result.samplesUsed);
    span.arg("sim_sec", result.elapsedSec);
    span.arg("significant", result.significant);
    if (result.crashed)
        span.arg("crashed", true);
    if (result.applyFailed)
        span.arg("apply_failed", true);
    return result;
}

} // namespace softsku
