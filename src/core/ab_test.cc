#include "core/ab_test.hh"

#include <cmath>

#include "util/logging.hh"

namespace softsku {

double
ABTestResult::gainPercent() const
{
    if (pairedDiffs.count() > 0)
        return pairedDiffs.mean() * 100.0;
    if (samplesA.mean() <= 0.0)
        return 0.0;
    return (samplesB.mean() / samplesA.mean() - 1.0) * 100.0;
}

double
ABTestResult::gainCiPercent() const
{
    return welch.diffHalfWidth * 100.0;
}

ABTester::ABTester(ProductionEnvironment &env, const InputSpec &spec)
    : env_(env), spec_(spec)
{
}

ABTestResult
ABTester::compare(const KnobConfig &baseline, const KnobConfig &candidate)
{
    ABTestResult result = measure(baseline, candidate, clockSec_);
    clockSec_ += result.elapsedSec;
    return result;
}

ABTestResult
ABTester::compareAt(const KnobConfig &baseline, const KnobConfig &candidate,
                    double startSec)
{
    return measure(baseline, candidate, startSec);
}

ABTestResult
ABTester::measure(const KnobConfig &baseline, const KnobConfig &candidate,
                  double startSec)
{
    ABTestResult result;
    result.configA = baseline;
    result.configB = candidate;

    const double spacing = spec_.sampleSpacingSec;
    double clock = startSec;

    // Resolve the ground truths once per test: samplePairTruth keeps
    // the tens-of-thousands-samples loop free of config hashing.
    const double trueA = env_.trueMips(baseline);
    const double trueB = env_.trueMips(candidate);

    // Warm-up: both servers run the new configuration for a few
    // minutes before observations count (cold-start bias, Sec. 4).
    for (std::uint64_t i = 0; i < spec_.warmupSamples; ++i) {
        clock += spacing;
        (void)env_.samplePairTruth(trueA, trueB, clock);
    }

    // Sequential sampling in batches; stop early once the difference
    // is significant and a minimum sample count is reached.
    const std::uint64_t batch = 100;
    while (result.samplesUsed < spec_.maxSamplesPerTest) {
        for (std::uint64_t i = 0; i < batch; ++i) {
            clock += spacing;
            PairedSample sample =
                env_.samplePairTruth(trueA, trueB, clock);
            result.samplesA.add(sample.mipsA);
            result.samplesB.add(sample.mipsB);
            // Simultaneous measurement is what pairing buys: the
            // common-mode load factor is multiplicative and cancels
            // exactly in the per-pair ratio.
            result.pairedDiffs.add(sample.mipsB / sample.mipsA - 1.0);
        }
        result.samplesUsed += batch;

        result.welch =
            pairedTTest(result.pairedDiffs, spec_.confidence);
        if (result.samplesUsed >= spec_.minSamplesPerTest &&
            result.welch.significant) {
            result.significant = true;
            break;
        }
    }

    if (!result.significant) {
        // The paper's give-up rule: after ~30k observations with no
        // 95%-confidence separation, conclude "no difference".
        result.welch = pairedTTest(result.pairedDiffs, spec_.confidence);
        result.significant = result.welch.significant;
    }
    result.elapsedSec = clock - startSec;
    return result;
}

} // namespace softsku
