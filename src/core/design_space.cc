#include "core/design_space.hh"

#include "core/knob_registry.hh"
#include "util/logging.hh"

namespace softsku {

void
KnobValue::applyTo(KnobConfig &config) const
{
    knobDescriptor(id).apply(*this, config);
}

KnobValue
KnobValue::fromConfig(KnobId id, const KnobConfig &config)
{
    KnobValue value = knobDescriptor(id).capture(config);
    value.id = id;
    return value;
}

bool
knobApplicable(KnobId id, const PlatformSpec &platform,
               const WorkloadProfile &profile, std::string *reason)
{
    auto fail = [&](const char *why) {
        if (reason)
            *reason = why;
        return false;
    };
    const KnobDescriptor &d = knobDescriptor(id);
    if (d.availableOn && !d.availableOn(platform))
        return fail(d.unavailableReason);
    if (d.requiresReboot && !profile.toleratesReboot)
        return fail("service cannot tolerate reboots on live traffic");
    if (d.inapplicableReason) {
        if (const char *why = d.inapplicableReason(platform, profile))
            return fail(why);
    }
    return true;
}

std::vector<KnobValue>
knobDomain(KnobId id, const PlatformSpec &platform,
           const WorkloadProfile &profile)
{
    std::vector<KnobValue> domain = knobDescriptor(id).domain(platform,
                                                              profile);
    for (KnobValue &value : domain)
        value.id = id;
    SOFTSKU_ASSERT(!domain.empty());
    return domain;
}

} // namespace softsku
