#include "core/design_space.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

void
KnobValue::applyTo(KnobConfig &config) const
{
    switch (id) {
      case KnobId::CoreFrequency:
        config.coreFreqGHz = number;
        break;
      case KnobId::UncoreFrequency:
        config.uncoreFreqGHz = number;
        break;
      case KnobId::CoreCount:
        config.activeCores = static_cast<int>(number);
        break;
      case KnobId::Cdp:
        config.cdp = cdp;
        break;
      case KnobId::Prefetcher:
        config.prefetch = prefetch;
        break;
      case KnobId::Thp:
        config.thp = thp;
        break;
      case KnobId::Shp:
        config.shpCount = static_cast<int>(number);
        break;
    }
}

KnobValue
KnobValue::fromConfig(KnobId id, const KnobConfig &config)
{
    KnobValue value;
    value.id = id;
    switch (id) {
      case KnobId::CoreFrequency:
        value.number = config.coreFreqGHz;
        value.label = format("%.1f GHz", config.coreFreqGHz);
        break;
      case KnobId::UncoreFrequency:
        value.number = config.uncoreFreqGHz;
        value.label = format("%.1f GHz", config.uncoreFreqGHz);
        break;
      case KnobId::CoreCount:
        value.number = config.activeCores;
        value.label = config.activeCores <= 0
                          ? "all cores"
                          : format("%d cores", config.activeCores);
        break;
      case KnobId::Cdp:
        value.cdp = config.cdp;
        value.label = config.cdp.enabled
                          ? format("{%dd,%dc}", config.cdp.dataWays,
                                   config.cdp.codeWays)
                          : "CDP off";
        break;
      case KnobId::Prefetcher:
        value.prefetch = config.prefetch;
        value.label = prefetcherPresetName(config.prefetch);
        break;
      case KnobId::Thp:
        value.thp = config.thp;
        value.label = "THP " + thpModeName(config.thp);
        break;
      case KnobId::Shp:
        value.number = config.shpCount;
        value.label = format("%d SHPs", config.shpCount);
        break;
    }
    return value;
}

bool
knobApplicable(KnobId id, const PlatformSpec &platform,
               const WorkloadProfile &profile, std::string *reason)
{
    auto fail = [&](const char *why) {
        if (reason)
            *reason = why;
        return false;
    };
    if (knobRequiresReboot(id) && !profile.toleratesReboot) {
        return fail("service cannot tolerate reboots on live traffic");
    }
    switch (id) {
      case KnobId::Shp:
        if (!profile.usesShp)
            return fail("service does not use the SHP allocation APIs");
        return true;
      case KnobId::Cdp:
        if (!platform.supportsRdt)
            return fail("platform lacks RDT (CAT/CDP)");
        return true;
      default:
        return true;
    }
}

std::vector<KnobValue>
knobDomain(KnobId id, const PlatformSpec &platform,
           const WorkloadProfile &profile)
{
    std::vector<KnobValue> domain;
    auto add = [&](KnobValue value) {
        value.id = id;
        domain.push_back(std::move(value));
    };

    switch (id) {
      case KnobId::CoreFrequency: {
        double maxGHz = platform.coreFreqMaxGHz;
        if (profile.usesAvx)
            maxGHz -= 0.2;   // shared core/uncore power budget
        for (double f : platform.coreFrequencySettings()) {
            if (f > maxGHz + 1e-9)
                continue;
            KnobValue v;
            v.number = f;
            v.label = format("%.1f GHz", f);
            add(std::move(v));
        }
        break;
      }

      case KnobId::UncoreFrequency:
        for (double f : platform.uncoreFrequencySettings()) {
            KnobValue v;
            v.number = f;
            v.label = format("%.1f GHz", f);
            add(std::move(v));
        }
        break;

      case KnobId::CoreCount: {
        for (int cores = 2; cores < platform.totalCores(); cores += 2) {
            KnobValue v;
            v.number = cores;
            v.label = format("%d cores", cores);
            add(std::move(v));
        }
        KnobValue v;
        v.number = platform.totalCores();
        v.label = format("%d cores", platform.totalCores());
        add(std::move(v));
        break;
      }

      case KnobId::Cdp: {
        KnobValue off;
        off.label = "CDP off";
        add(std::move(off));
        for (int data = 1; data < platform.llc.ways; ++data) {
            int code = platform.llc.ways - data;
            KnobValue v;
            v.cdp = {true, data, code};
            v.label = format("{%dd,%dc}", data, code);
            add(std::move(v));
        }
        break;
      }

      case KnobId::Prefetcher:
        for (PrefetcherPreset preset : allPrefetcherPresets()) {
            KnobValue v;
            v.prefetch = preset;
            v.label = prefetcherPresetName(preset);
            add(std::move(v));
        }
        break;

      case KnobId::Thp:
        for (ThpMode mode :
             {ThpMode::Madvise, ThpMode::Always, ThpMode::Never}) {
            KnobValue v;
            v.thp = mode;
            v.label = "THP " + thpModeName(mode);
            add(std::move(v));
        }
        break;

      case KnobId::Shp:
        for (int count = 0; count <= 600; count += 100) {
            KnobValue v;
            v.number = count;
            v.label = format("%d SHPs", count);
            add(std::move(v));
        }
        break;
    }
    SOFTSKU_ASSERT(!domain.empty());
    return domain;
}

} // namespace softsku
