#include "core/input_spec.hh"

#include "core/knob_registry.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

SweepMode
sweepModeFromString(const std::string &text)
{
    std::string mode = toLower(text);
    if (mode == "independent")
        return SweepMode::Independent;
    if (mode == "exhaustive")
        return SweepMode::Exhaustive;
    if (mode == "hillclimb" || mode == "hill_climb")
        return SweepMode::HillClimb;
    fatal("unknown sweep mode '%s' (independent, exhaustive, hillclimb)",
          text.c_str());
}

std::string
sweepModeName(SweepMode mode)
{
    switch (mode) {
      case SweepMode::Independent: return "independent";
      case SweepMode::Exhaustive: return "exhaustive";
      case SweepMode::HillClimb: return "hillclimb";
    }
    panic("unreachable sweep mode");
}

void
InputSpec::normalize()
{
    if (!knobs.empty())
        return;
    // Default to every knob the platform offers.  Platform-gated knobs
    // (the memory-tier trio) simply do not exist on platforms without
    // the hardware — they are excluded here, not listed as skipped.
    // Unknown platform names fall back to the ungated set and fail
    // later with the platform lookup's own error.
    const PlatformSpec *spec = platformByNameOrNull(platform);
    for (const KnobDescriptor &d : knobRegistry()) {
        if (d.availableOn && !(spec && d.availableOn(*spec)))
            continue;
        knobs.push_back(d.id);
    }
}

void
InputSpec::applySearchOverrides(const ToolOptions &tool)
{
    if (!tool.search.empty())
        search = searchModeFromString(tool.search);
    if (tool.confidence > 0.0)
        confidence = tool.confidence;
    if (!tool.knobs.empty()) {
        knobs.clear();
        for (const std::string &key : split(tool.knobs, ','))
            knobs.push_back(knobFromKey(std::string(trim(key))));
    }
}

void
InputSpec::validate() const
{
    if (microservice.empty())
        fatal("μSKU input: 'microservice' is required");
    if (platform.empty())
        fatal("μSKU input: 'platform' is required");
    if (confidence <= 0.5 || confidence >= 1.0)
        fatal("μSKU input: confidence %.3f outside (0.5, 1)", confidence);
    if (maxSamplesPerTest < minSamplesPerTest)
        fatal("μSKU input: max samples %llu below min %llu",
              static_cast<unsigned long long>(maxSamplesPerTest),
              static_cast<unsigned long long>(minSamplesPerTest));
    if (sampleSpacingSec <= 0.0)
        fatal("μSKU input: sample spacing must be positive");
    if (raceChunkSamples == 0)
        fatal("μSKU input: race chunk size must be positive");
    if (search != SearchMode::Fixed && raceChunkSamples > maxSamplesPerTest)
        fatal("μSKU input: race chunk %llu exceeds the per-test budget "
              "%llu",
              static_cast<unsigned long long>(raceChunkSamples),
              static_cast<unsigned long long>(maxSamplesPerTest));
}

Json
InputSpec::toJson() const
{
    Json doc = Json::object();
    doc.set("microservice", Json(microservice));
    doc.set("platform", Json(platform));
    Json sweepDoc = Json::object();
    sweepDoc.set("mode", Json(sweepModeName(sweep)));
    Json knobList = Json::array();
    for (KnobId id : knobs)
        knobList.push(Json(knobKey(id)));
    sweepDoc.set("knobs", std::move(knobList));
    doc.set("sweep", std::move(sweepDoc));
    doc.set("confidence", Json(confidence));
    doc.set("max_samples", Json(static_cast<long long>(maxSamplesPerTest)));
    doc.set("min_samples", Json(static_cast<long long>(minSamplesPerTest)));
    doc.set("warmup_samples", Json(static_cast<long long>(warmupSamples)));
    doc.set("sample_spacing_sec", Json(sampleSpacingSec));
    doc.set("validation_duration_sec", Json(validationDurationSec));
    doc.set("seed", Json(static_cast<long long>(seed)));
    // Only emitted when adaptive search is active, so fixed-mode specs
    // (and the reports embedding them) keep their historical bytes.
    if (search != SearchMode::Fixed) {
        doc.set("search", Json(searchModeName(search)));
        doc.set("race_chunk_samples",
                Json(static_cast<long long>(raceChunkSamples)));
    }
    return doc;
}

InputSpec
InputSpec::fromJson(const Json &doc)
{
    InputSpec spec;
    spec.microservice = doc.stringOr("microservice", "");
    spec.platform = doc.stringOr("platform", "");
    if (doc.contains("sweep")) {
        const Json &sweepDoc = doc.at("sweep");
        spec.sweep =
            sweepModeFromString(sweepDoc.stringOr("mode", "independent"));
        if (sweepDoc.contains("knobs")) {
            for (const Json &knob : sweepDoc.at("knobs").elements())
                spec.knobs.push_back(knobFromKey(knob.asString()));
        }
    }
    spec.confidence = doc.numberOr("confidence", spec.confidence);
    spec.maxSamplesPerTest = static_cast<std::uint64_t>(
        doc.numberOr("max_samples",
                     static_cast<double>(spec.maxSamplesPerTest)));
    spec.minSamplesPerTest = static_cast<std::uint64_t>(
        doc.numberOr("min_samples",
                     static_cast<double>(spec.minSamplesPerTest)));
    spec.warmupSamples = static_cast<std::uint64_t>(doc.numberOr(
        "warmup_samples", static_cast<double>(spec.warmupSamples)));
    spec.sampleSpacingSec =
        doc.numberOr("sample_spacing_sec", spec.sampleSpacingSec);
    spec.validationDurationSec = doc.numberOr("validation_duration_sec",
                                              spec.validationDurationSec);
    spec.seed = static_cast<std::uint64_t>(
        doc.numberOr("seed", static_cast<double>(spec.seed)));
    spec.search = searchModeFromString(doc.stringOr("search", "fixed"));
    spec.raceChunkSamples = static_cast<std::uint64_t>(
        doc.numberOr("race_chunk_samples",
                     static_cast<double>(spec.raceChunkSamples)));
    spec.normalize();
    spec.validate();
    return spec;
}

InputSpec
InputSpec::parse(const std::string &text)
{
    std::string error;
    auto [doc, ok] = Json::parse(text, &error);
    if (!ok)
        fatal("μSKU input file: %s", error.c_str());
    return fromJson(doc);
}

} // namespace softsku
