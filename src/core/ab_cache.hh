/**
 * @file
 * Cross-run persistence for the μSKU A/B memo cache.
 *
 * A full sweep costs hours of simulated measurement; re-running the
 * same tool invocation (CI smoke runs, bench warm-ups, fleet-wide
 * orchestrations that revisit a target) repeats comparisons whose
 * outcomes are fully determined by the environment seed, the spec's
 * statistics policy, the fault plan, and the comparison key.  This
 * module serializes those keyed outcomes to disk so a repeat
 * invocation replays them instead of measuring.
 *
 * Correctness contract: a cached entry may only be replayed in a run
 * whose *context* — everything a comparison's outcome depends on
 * besides its key — matches the run that measured it.  The context is
 * a canonical string (service, platform, env seed, simulation windows,
 * noise model, statistics policy, robustness policy, fault plan and
 * seed); it names the cache file via a stable hash and is verified
 * verbatim on load, so a hash collision or hand-edited file can never
 * smuggle foreign results into a report.
 *
 * Fidelity contract: doubles round-trip as IEEE-754 bit patterns (hex),
 * so a report composed from replayed entries is byte-identical to the
 * report of the run that measured them.
 */

#ifndef SOFTSKU_CORE_AB_CACHE_HH
#define SOFTSKU_CORE_AB_CACHE_HH

#include <cstddef>
#include <string>
#include <unordered_map>

#include "core/ab_test.hh"
#include "core/input_spec.hh"
#include "core/soft_sku.hh"
#include "sim/production_env.hh"

namespace softsku {

/**
 * Bumped whenever the on-disk entry layout changes.
 *
 * History: 1 = comparison entries only; 2 = adds the "validation"
 * section (chunked validation-phase results) — version-1 files are
 * ignored with a warning, which is exactly a cold run.  3 = embedded
 * knob configs move to the registry's keyed "knobs" layout; stale v2
 * files are likewise ignored with a warning and rebuilt.
 */
constexpr int kAbCacheSchemaVersion = 3;

/**
 * Exact double → "0x..." IEEE-754 bit pattern.  The cache's fidelity
 * contract rests on these two: every double in the file round-trips
 * bit-for-bit, including ±0, denormals, and infinities.
 */
std::string hexBits(double value);

/** Exact "0x..." bit pattern → double; false on malformed input. */
bool bitsFromHex(const std::string &text, double &out);

/**
 * The canonical context string for comparisons measured by @p env /
 * @p spec / @p robust.  Two runs may share cached results iff their
 * context strings are equal.
 */
std::string abCacheContext(const ProductionEnvironment &env,
                           const InputSpec &spec,
                           const RobustnessPolicy &robust);

/** The cache file a context maps to inside @p dir. */
std::string abCacheFilePath(const std::string &dir,
                            const std::string &context);

/**
 * Load the cache file for @p context from @p dir into @p into
 * (existing keys win — in-memory results are never overwritten).
 * Missing files are a clean miss; malformed files and context
 * mismatches are skipped with a warning.  When @p validation is given,
 * the file's validation-chunk section loads into it the same way.
 * @return number of comparison entries added
 */
std::size_t loadAbCache(const std::string &dir,
                        const std::string &context,
                        std::unordered_map<std::string, ABTestResult> &into,
                        ValidationCache *validation = nullptr);

/**
 * Serialize @p memo (and @p validation, when given) to the cache file
 * for @p context under @p dir, creating the directory when needed.
 * Entries are written in sorted key order, so the file bytes are
 * deterministic.
 * @return false on I/O failure (logged, never fatal)
 */
bool storeAbCache(const std::string &dir, const std::string &context,
                  const std::unordered_map<std::string, ABTestResult> &memo,
                  const ValidationCache *validation = nullptr);

} // namespace softsku

#endif // SOFTSKU_CORE_AB_CACHE_HH
