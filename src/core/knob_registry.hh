/**
 * @file
 * The knob descriptor registry: one record per knob carrying everything
 * knob-specific — registry key, display name, reboot requirement,
 * platform availability, applicability rule, sweep-axis generator,
 * KnobValue actuation hooks, JSON codec, and describe() fragment.
 *
 * Before the registry these lived as per-knob switch statements
 * scattered across knobs.cc, design_space.cc, and the configurator;
 * adding a knob meant finding every switch.  Now design_space,
 * configurator, ab_cache context keys, and report_writer iterate
 * descriptors, and a new knob is one new record (the memory-tier knobs
 * are the proof: nothing outside their descriptors special-cases them).
 */

#ifndef SOFTSKU_CORE_KNOB_REGISTRY_HH
#define SOFTSKU_CORE_KNOB_REGISTRY_HH

#include <string>
#include <vector>

#include "core/design_space.hh"
#include "workload/profile.hh"

namespace softsku {

/** Everything knob-specific, in one record. */
struct KnobDescriptor
{
    KnobId id = KnobId::CoreFrequency;
    const char *key = "";             //!< registry key ("core_freq")
    const char *displayName = "";     //!< human-readable name
    bool requiresReboot = false;

    /**
     * Platform-availability predicate; null means the knob exists on
     * every platform.  Unavailable knobs are excluded from default
     * sweep sets entirely (InputSpec::normalize) — they are not merely
     * "skipped", they do not exist for that platform.
     */
    bool (*availableOn)(const PlatformSpec &platform) = nullptr;
    /** Skip reason reported when availableOn fails. */
    const char *unavailableReason = "";

    /**
     * Per-knob applicability rule beyond the shared reboot gate; null
     * means always applicable.  Returns nullptr when applicable, else
     * a short skip reason.
     */
    const char *(*inapplicableReason)(const PlatformSpec &platform,
                                      const WorkloadProfile &profile) =
        nullptr;

    /** Axis generator: the candidate values the A/B sweep tests. */
    std::vector<KnobValue> (*domain)(const PlatformSpec &platform,
                                     const WorkloadProfile &profile) =
        nullptr;

    /** Actuation hook: write a candidate value into a config. */
    void (*apply)(const KnobValue &value, KnobConfig &config) = nullptr;
    /** Read the config's current value back (label included). */
    KnobValue (*capture)(const KnobConfig &config) = nullptr;

    /**
     * JSON codec for the keyed "knobs" object (report schema v3).
     * Writers may omit default values so legacy configs keep exactly
     * their seven historical keys.
     */
    void (*writeJson)(const KnobConfig &config, Json &knobsDoc) = nullptr;
    void (*readJson)(const Json &knobsDoc, KnobConfig &config) = nullptr;

    /**
     * describe() fragment ("core=2.2GHz"); empty string omits the
     * fragment, which is how memory-tier knobs at their defaults keep
     * legacy memo/cache keys byte-identical.
     */
    std::string (*describeFragment)(const KnobConfig &config) = nullptr;
};

/** All registered descriptors, in registry (paper) order. */
const std::vector<KnobDescriptor> &knobRegistry();

/** The descriptor for @p id (every KnobId is registered). */
const KnobDescriptor &knobDescriptor(KnobId id);

/** Look up by registry key; nullptr on unknown keys. */
const KnobDescriptor *findKnobDescriptor(const std::string &key);

/** Comma-separated list of valid registry keys, for error messages. */
std::string knobKeyList();

} // namespace softsku

#endif // SOFTSKU_CORE_KNOB_REGISTRY_HH
