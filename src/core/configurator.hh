/**
 * @file
 * The A/B test configurator (paper Fig 13): turns an input spec into a
 * concrete test plan — which knobs to sweep with which candidate
 * values — applying the applicability filters (no SHP sweep for
 * services without SHP use; no reboot-requiring knobs for services
 * that cannot tolerate reboots; no CDP without RDT).
 */

#ifndef SOFTSKU_CORE_CONFIGURATOR_HH
#define SOFTSKU_CORE_CONFIGURATOR_HH

#include <string>
#include <vector>

#include "core/design_space.hh"
#include "core/input_spec.hh"

namespace softsku {

/** The sweep plan for one knob. */
struct KnobPlan
{
    KnobId id = KnobId::CoreFrequency;
    std::vector<KnobValue> values;
};

/** A knob the configurator refused to sweep, with the reason. */
struct SkippedKnob
{
    KnobId id = KnobId::CoreFrequency;
    std::string reason;
};

/** The complete test plan. */
struct TestPlan
{
    std::vector<KnobPlan> knobs;
    std::vector<SkippedKnob> skipped;

    /** Total candidate configurations across all planned knobs. */
    size_t totalCandidates() const;
};

/**
 * Build the plan for @p spec.  fatal() when the target service's
 * throughput cannot be proxied by MIPS (the Cache tiers, Sec. 4) —
 * μSKU's prototype metric would silently mislead there.
 */
TestPlan buildTestPlan(const InputSpec &spec, const PlatformSpec &platform,
                       const WorkloadProfile &profile);

} // namespace softsku

#endif // SOFTSKU_CORE_CONFIGURATOR_HH
