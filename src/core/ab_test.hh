/**
 * @file
 * The A/B tester (paper Sec. 4): compare two server configurations on
 * live traffic with statistical rigor.
 *
 * Protocol, as the paper describes it: discard a warm-up phase to avoid
 * cold-start bias, record MIPS samples with sufficient spacing for
 * independence, and keep sampling until the difference is significant
 * at the requested confidence — or give up after ~30,000 observations
 * and declare "no statistically significant difference".
 */

#ifndef SOFTSKU_CORE_AB_TEST_HH
#define SOFTSKU_CORE_AB_TEST_HH

#include "core/input_spec.hh"
#include "core/knobs.hh"
#include "obs/metrics.hh"
#include "sim/faults.hh"
#include "sim/production_env.hh"
#include "stats/running_stat.hh"
#include "stats/students_t.hh"

namespace softsku {

/**
 * How the measurement machinery defends itself against a hostile
 * fleet.  Deliberately separate from InputSpec's statistics policy:
 * these switches change what the tool *does about* faults, and default
 * to the benign-production behavior (everything off).
 */
struct RobustnessPolicy
{
    /** Extra measurement attempts after a crashed/failed comparison. */
    int maxRetries = 0;
    /** MAD-based outlier rejection on the paired ratios. */
    bool robustFilter = false;
    /** Reject pairs beyond this many MADs from the batch median. */
    double madCutoff = 8.0;
    /** Abort candidates whose QoS envelope collapses (sweep engine). */
    bool qosGuardrail = false;
    /** Tolerated p99 overshoot of the SLO before aborting. */
    double qosMarginFraction = 0.10;
    /** Minimum peak-QPS fraction (vs baseline) the SLO solve must keep. */
    double minPeakQpsFraction = 0.7;

    /** The defaults μSKU uses when a fault plan is active. */
    static RobustnessPolicy hostile()
    {
        RobustnessPolicy policy;
        policy.maxRetries = 2;
        policy.robustFilter = true;
        policy.qosGuardrail = true;
        return policy;
    }

    bool operator==(const RobustnessPolicy &) const = default;
};

/** Outcome of one A-vs-B comparison. */
struct ABTestResult
{
    KnobConfig configA;             //!< baseline
    KnobConfig configB;             //!< candidate
    RunningStat samplesA;
    RunningStat samplesB;
    /** Per-pair relative gains (B/A − 1): the common-mode load factor
     *  is multiplicative, so the ratio cancels it exactly. */
    RunningStat pairedDiffs;
    WelchResult welch;
    std::uint64_t samplesUsed = 0;  //!< per arm
    /** Accepted samples summed over every measurement attempt (the
     *  sweep engine's retry loop fills this; samplesUsed only reflects
     *  the final attempt).  Replayed from the memo cache so warm runs
     *  account identically to the run that measured. */
    std::uint64_t samplesAccepted = 0;
    bool significant = false;
    double elapsedSec = 0.0;        //!< simulated measurement wall clock

    /** Fault/recovery events observed during this comparison. */
    FaultTelemetry faults;
    /** The (last) measurement attempt died on a server crash. */
    bool crashed = false;
    /** The (last) knob apply failed; no measurement happened. */
    bool applyFailed = false;
    /** The QoS guardrail aborted measurement of this candidate. */
    bool qosAborted = false;

    /** Mean throughput difference of B over A, percent. */
    double gainPercent() const;

    /** Confidence half-width on the gain, percent of A's mean. */
    double gainCiPercent() const;
};

/**
 * A resumable sequential measurement window: the paper's protocol
 * (warm-up discard, spaced paired samples, a significance check after
 * every 100-sample batch) expressed as a session that can be advanced
 * a slice at a time.
 *
 * One uninterrupted run to a target and any sequence of pullTo() calls
 * reaching the same target walk byte-identical sample streams and
 * produce bit-identical cumulative statistics — the property the
 * adaptive racing search builds on: a racing arm advanced chunk by
 * chunk holds, at every 100-sample boundary, exactly the state the
 * fixed protocol would hold there, so the moment the fixed stopping
 * rule fires the arm's verdict (mean, CI, sample count) is the fixed
 * protocol's verdict, bit for bit.
 *
 * The session does not own its environment slice; the caller keeps the
 * slice alive (and exclusively owned) for the session's lifetime.
 */
class MeasureSession
{
  public:
    MeasureSession(ProductionEnvironment &env, const InputSpec &spec,
                   const RobustnessPolicy &policy,
                   const KnobConfig &baseline, const KnobConfig &candidate,
                   double startSec);

    /**
     * Advance the window until @p targetAccepted samples have been
     * accepted in total (cumulative, not incremental), the comparison
     * crashes, or — when @p stopOnSignificance — the fixed protocol's
     * stopping rule fires (significant at the spec confidence past the
     * minimum sample floor, checked after each 100-attempt batch).
     *
     * The returned result carries *cumulative* statistics (pairedDiffs,
     * samplesA/B, welch, samplesUsed) but *incremental* accounting
     * (elapsedSec and samplesAccepted cover only this call), so a
     * caller summing per-pull accounting never double-counts the
     * prefix.
     */
    ABTestResult pullTo(std::uint64_t targetAccepted,
                        bool stopOnSignificance);

    /** Accepted samples so far (the cumulative position). */
    std::uint64_t accepted() const { return result_.samplesUsed; }

    /** The window died (crash or apply failure); pulls return as-is. */
    bool dead() const { return result_.crashed || result_.applyFailed; }

  private:
    ProductionEnvironment &env_;
    InputSpec spec_;           //!< copied: sessions outlive sweep frames
    RobustnessPolicy policy_;
    KnobConfig baseline_, candidate_;
    double startSec_ = 0.0;
    double clock_ = 0.0;
    double trueA_ = 0.0, trueB_ = 0.0;
    bool opened_ = false;      //!< apply + warm-up already ran
    std::uint64_t attempts_ = 0;
    ABTestResult result_;      //!< cumulative state
};

/** Sequential paired A/B measurement driver. */
class ABTester
{
  public:
    /**
     * @param env     the production fleet slice to measure in
     * @param spec    statistical policy (confidence, caps, spacing)
     * @param policy  fault-defense policy; the default is the benign
     *                behavior (no filtering, no retries)
     * @param metrics optional registry receiving per-sample counters
     *                (accepted / MAD-rejected / dropped); counters are
     *                order-free, so any thread may own the tester
     */
    ABTester(ProductionEnvironment &env, const InputSpec &spec,
             const RobustnessPolicy &policy = RobustnessPolicy{},
             MetricsRegistry *metrics = nullptr);

    /**
     * Run one comparison.  Measurement time continues monotonically
     * across calls, so consecutive knob tests see different diurnal
     * phases — as a real multi-hour sweep does.
     */
    ABTestResult compare(const KnobConfig &baseline,
                         const KnobConfig &candidate);

    /**
     * Run one comparison in a fixed measurement window starting at
     * @p startSec, without touching the shared monotonic clock.  This
     * is the parallel sweep engine's entry point: the window start is
     * derived deterministically per arm, so the result depends only on
     * (environment seed, spec, configs, startSec) — never on which
     * thread runs it or in what order.
     */
    ABTestResult compareAt(const KnobConfig &baseline,
                           const KnobConfig &candidate, double startSec);

    /** Simulated wall-clock spent measuring so far. */
    double elapsedSec() const { return clockSec_; }

  private:
    ABTestResult measure(const KnobConfig &baseline,
                         const KnobConfig &candidate, double startSec);

    /** One-shot window: a MeasureSession opened and pulled to the cap,
     *  so the fixed protocol and the racing sessions share one loop. */
    ABTestResult measureSamples(const KnobConfig &baseline,
                                const KnobConfig &candidate,
                                double startSec, std::uint64_t maxSamples,
                                bool stopOnSignificance);

    ProductionEnvironment &env_;
    const InputSpec &spec_;
    RobustnessPolicy policy_;
    MetricsRegistry *metrics_;
    double clockSec_ = 0.0;
};

} // namespace softsku

#endif // SOFTSKU_CORE_AB_TEST_HH
