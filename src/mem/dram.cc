#include "mem/dram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace softsku {

namespace {

/** Fraction of unloaded latency spent in the uncore (ring + MC). */
constexpr double kUncoreLatencyShare = 0.40;

/** Utilization where delivered bandwidth effectively saturates. */
constexpr double kSaturation = 0.97;

/**
 * Cold-first placement skew: placing the coldest R of the footprint on
 * the far tier attracts accesses sub-linearly (hot/cold skew), so the
 * base far-access fraction is R^kPlacementSkew.
 */
constexpr double kPlacementSkew = 1.7;

/** 2 MiB pages cost this much more migration traffic than 4 KiB runs. */
constexpr double kHugeMigrationPenalty = 1.5;

/** Share of far accesses a promotion policy converts to near hits. */
double
promotionEfficiency(TierPolicy policy)
{
    switch (policy) {
      case TierPolicy::Static: return 0.0;
      case TierPolicy::Conservative: return 0.35;
      case TierPolicy::Balanced: return 0.55;
      case TierPolicy::Aggressive: return 0.70;
    }
    panic("unreachable tier policy");
}

/** Migration traffic as a fraction of (demand x placement ratio). */
double
migrationRate(TierPolicy policy)
{
    switch (policy) {
      case TierPolicy::Static: return 0.0;
      case TierPolicy::Conservative: return 0.008;
      case TierPolicy::Balanced: return 0.02;
      case TierPolicy::Aggressive: return 0.05;
    }
    panic("unreachable tier policy");
}

} // namespace

std::string
tierPolicyName(TierPolicy policy)
{
    switch (policy) {
      case TierPolicy::Static: return "static";
      case TierPolicy::Conservative: return "conservative";
      case TierPolicy::Balanced: return "balanced";
      case TierPolicy::Aggressive: return "aggressive";
    }
    panic("unreachable tier policy");
}

TierPolicy
tierPolicyFromString(const std::string &text)
{
    for (TierPolicy policy : allTierPolicies()) {
        if (tierPolicyName(policy) == text)
            return policy;
    }
    fatal("unknown tier policy '%s' (static, conservative, balanced, "
          "aggressive)", text.c_str());
}

std::vector<TierPolicy>
allTierPolicies()
{
    return {TierPolicy::Static, TierPolicy::Conservative,
            TierPolicy::Balanced, TierPolicy::Aggressive};
}

DramModel::DramModel(const PlatformSpec &platform, double uncoreGHz,
                     int mbaPercent)
    : platform_(platform), uncoreGHz_(uncoreGHz)
{
    SOFTSKU_ASSERT(uncoreGHz > 0.0);
    SOFTSKU_ASSERT(mbaPercent >= 10 && mbaPercent <= 100);
    // Peak bandwidth is DRAM-channel limited; the uncore only shaves a
    // little off when clocked far below nominal (queue drain rate).
    double uncoreScale =
        std::min(1.0, 0.85 + 0.15 * uncoreGHz_ / platform.uncoreFreqMaxGHz);
    peakGBs_ = platform.peakMemBandwidthGBs * uncoreScale;
    // The resctrl MB throttle caps the request rate toward the memory
    // controller.  Skipped entirely at 100 so unthrottled platforms
    // keep their historical peak bit-for-bit.
    if (mbaPercent != 100)
        peakGBs_ *= mbaPercent / 100.0;

    // The on-die portion of the unloaded latency stretches as the
    // uncore slows down.
    double uncoreRatio = platform.uncoreFreqMaxGHz / uncoreGHz_;
    baseLatencyNs_ =
        platform.unloadedMemLatencyNs *
        ((1.0 - kUncoreLatencyShare) + kUncoreLatencyShare * uncoreRatio);
}

double
DramModel::latencyNs(double bandwidthGBs) const
{
    double u = std::clamp(bandwidthGBs / peakGBs_, 0.0, kSaturation);
    // Horizontal asymptote then super-linear queuing growth: a u^4
    // onset keeps the curve flat through ~70% utilization and reaches
    // roughly 4-5x the unloaded latency at the saturation knee,
    // matching the measured stress-test shape of Fig 12.
    double queue = baseLatencyNs_ * 0.25 * std::pow(u, 4.0) / (1.0 - u);
    return baseLatencyNs_ + queue;
}

double
DramModel::unloadedLatencyNs() const
{
    return baseLatencyNs_;
}

MemoryOperatingPoint
DramModel::resolve(double demandGBs) const
{
    MemoryOperatingPoint op;
    op.demandGBs = std::max(demandGBs, 0.0);
    double ceiling = peakGBs_ * kSaturation;
    if (op.demandGBs <= ceiling) {
        op.achievedGBs = op.demandGBs;
        op.backpressure = 1.0;
    } else {
        op.achievedGBs = ceiling;
        op.backpressure = op.demandGBs / ceiling;
    }
    op.latencyNs = latencyNs(op.achievedGBs);
    return op;
}

double
DramModel::llcLatencyNs() const
{
    return platform_.llcLatencyNs * platform_.uncoreFreqMaxGHz / uncoreGHz_;
}

double
DramModel::pageWalkLatencyNs() const
{
    // Walks traverse cached page-table levels through the uncore.
    return platform_.pageWalkLatencyNs *
           (0.6 + 0.4 * platform_.uncoreFreqMaxGHz / uncoreGHz_);
}

TieredMemoryModel::TieredMemoryModel(const PlatformSpec &platform,
                                     double uncoreGHz, int mbaPercent,
                                     TierPolicy policy, double farMemRatio)
    : platform_(platform), near_(platform, uncoreGHz, mbaPercent),
      policy_(policy), farMemRatio_(farMemRatio),
      farPeakGBs_(platform.farMemory.peakBandwidthGBs),
      farBaseLatencyNs_(near_.unloadedLatencyNs() +
                        platform.farMemory.extraLatencyNs)
{
    SOFTSKU_ASSERT(farMemRatio >= 0.0 && farMemRatio < 1.0);
    if (!platform.farMemory.present) {
        SOFTSKU_ASSERT(farMemRatio == 0.0);
    }
}

double
TieredMemoryModel::farAccessFraction() const
{
    if (!engaged())
        return 0.0;
    double base = std::pow(farMemRatio_, kPlacementSkew);
    return base * (1.0 - promotionEfficiency(policy_));
}

double
TieredMemoryModel::migrationGBs(double demandGBs, double hugeFraction) const
{
    if (!engaged())
        return 0.0;
    double huge = std::clamp(hugeFraction, 0.0, 1.0);
    return std::max(demandGBs, 0.0) * farMemRatio_ *
           migrationRate(policy_) *
           (1.0 + kHugeMigrationPenalty * huge);
}

double
TieredMemoryModel::farLatencyNs(double bandwidthGBs) const
{
    // Same asymptote-then-queue shape as the near tier (the far
    // controller queues the same way), on the far tier's own base
    // latency and narrower peak.
    double u = std::clamp(bandwidthGBs / farPeakGBs_, 0.0, kSaturation);
    double queue = farBaseLatencyNs_ * 0.25 * std::pow(u, 4.0) / (1.0 - u);
    return farBaseLatencyNs_ + queue;
}

MemoryOperatingPoint
TieredMemoryModel::resolve(double demandGBs, double hugeFraction) const
{
    // Exact delegation: legacy platforms (and all-near placements) must
    // resolve through the identical code path, bit for bit.
    if (!engaged())
        return near_.resolve(demandGBs);

    double demand = std::max(demandGBs, 0.0);
    double f = farAccessFraction();
    double migration = migrationGBs(demand, hugeFraction);

    // Promotion/demotion traffic occupies channels on both tiers.
    double nearDemand = demand * (1.0 - f) + migration;
    double farDemand = demand * f + migration;

    MemoryOperatingPoint nearOp = near_.resolve(nearDemand);

    double farCeiling = farPeakGBs_ * kSaturation;
    double farAchieved = std::min(farDemand, farCeiling);
    double farBackpressure =
        farDemand <= farCeiling ? 1.0 : farDemand / farCeiling;
    double farLat = farLatencyNs(farAchieved);

    MemoryOperatingPoint op;
    op.demandGBs = demand;
    op.latencyNs = (1.0 - f) * nearOp.latencyNs + f * farLat;
    op.backpressure =
        (1.0 - f) * nearOp.backpressure + f * farBackpressure;
    // Useful achieved traffic: what each tier delivered minus the
    // migration overhead riding on it, capped at what was asked for.
    double useful = std::max(0.0, nearOp.achievedGBs - migration) +
                    std::max(0.0, farAchieved - migration);
    op.achievedGBs = std::min(demand, useful);
    return op;
}

} // namespace softsku
