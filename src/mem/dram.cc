#include "mem/dram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace softsku {

namespace {

/** Fraction of unloaded latency spent in the uncore (ring + MC). */
constexpr double kUncoreLatencyShare = 0.40;

/** Utilization where delivered bandwidth effectively saturates. */
constexpr double kSaturation = 0.97;

} // namespace

DramModel::DramModel(const PlatformSpec &platform, double uncoreGHz)
    : platform_(platform), uncoreGHz_(uncoreGHz)
{
    SOFTSKU_ASSERT(uncoreGHz > 0.0);
    // Peak bandwidth is DRAM-channel limited; the uncore only shaves a
    // little off when clocked far below nominal (queue drain rate).
    double uncoreScale =
        std::min(1.0, 0.85 + 0.15 * uncoreGHz_ / platform.uncoreFreqMaxGHz);
    peakGBs_ = platform.peakMemBandwidthGBs * uncoreScale;

    // The on-die portion of the unloaded latency stretches as the
    // uncore slows down.
    double uncoreRatio = platform.uncoreFreqMaxGHz / uncoreGHz_;
    baseLatencyNs_ =
        platform.unloadedMemLatencyNs *
        ((1.0 - kUncoreLatencyShare) + kUncoreLatencyShare * uncoreRatio);
}

double
DramModel::latencyNs(double bandwidthGBs) const
{
    double u = std::clamp(bandwidthGBs / peakGBs_, 0.0, kSaturation);
    // Horizontal asymptote then super-linear queuing growth: a u^4
    // onset keeps the curve flat through ~70% utilization and reaches
    // roughly 4-5x the unloaded latency at the saturation knee,
    // matching the measured stress-test shape of Fig 12.
    double queue = baseLatencyNs_ * 0.25 * std::pow(u, 4.0) / (1.0 - u);
    return baseLatencyNs_ + queue;
}

double
DramModel::unloadedLatencyNs() const
{
    return baseLatencyNs_;
}

MemoryOperatingPoint
DramModel::resolve(double demandGBs) const
{
    MemoryOperatingPoint op;
    op.demandGBs = std::max(demandGBs, 0.0);
    double ceiling = peakGBs_ * kSaturation;
    if (op.demandGBs <= ceiling) {
        op.achievedGBs = op.demandGBs;
        op.backpressure = 1.0;
    } else {
        op.achievedGBs = ceiling;
        op.backpressure = op.demandGBs / ceiling;
    }
    op.latencyNs = latencyNs(op.achievedGBs);
    return op;
}

double
DramModel::llcLatencyNs() const
{
    return platform_.llcLatencyNs * platform_.uncoreFreqMaxGHz / uncoreGHz_;
}

double
DramModel::pageWalkLatencyNs() const
{
    // Walks traverse cached page-table levels through the uncore.
    return platform_.pageWalkLatencyNs *
           (0.6 + 0.4 * platform_.uncoreFreqMaxGHz / uncoreGHz_);
}

} // namespace softsku
