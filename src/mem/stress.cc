#include "mem/stress.hh"

#include "mem/dram.hh"
#include "util/logging.hh"

namespace softsku {

std::vector<StressPoint>
memoryStressCurve(const PlatformSpec &platform, int points)
{
    SOFTSKU_ASSERT(points >= 2);
    DramModel dram(platform, platform.uncoreFreqMaxGHz);
    std::vector<StressPoint> curve;
    curve.reserve(static_cast<size_t>(points));
    double peak = dram.peakBandwidthGBs();
    for (int i = 0; i < points; ++i) {
        double frac =
            static_cast<double>(i) / static_cast<double>(points - 1);
        double bw = frac * peak * 0.96;
        curve.push_back({bw, dram.latencyNs(bw)});
    }
    return curve;
}

} // namespace softsku
