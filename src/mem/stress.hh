/**
 * @file
 * Memory stress-test harness in the style of Intel's Memory Latency
 * Checker, which the paper uses to trace each platform's inherent
 * bandwidth-vs-latency curve in Fig 12.
 */

#ifndef SOFTSKU_MEM_STRESS_HH
#define SOFTSKU_MEM_STRESS_HH

#include <vector>

#include "arch/platform.hh"

namespace softsku {

/** One point on the stress-test curve. */
struct StressPoint
{
    double bandwidthGBs = 0.0;
    double latencyNs = 0.0;
};

/**
 * Sweep offered load from idle to saturation on @p platform at its
 * maximum uncore frequency and return the characteristic curve.
 *
 * @param points number of sweep points
 */
std::vector<StressPoint> memoryStressCurve(const PlatformSpec &platform,
                                           int points = 30);

} // namespace softsku

#endif // SOFTSKU_MEM_STRESS_HH
