/**
 * @file
 * Two-tier memory model: DRAM (near) and CXL-style far memory.
 *
 * Fig 12 of the paper characterizes each platform with a memory stress
 * test: latency sits on a horizontal asymptote at the unloaded value,
 * then grows exponentially as offered load approaches saturation.
 * DramModel reproduces that curve for the near tier and resolves a
 * *demand* bandwidth to an achieved (bandwidth, latency, backpressure)
 * operating point.  Uncore frequency scales the on-die portion of the
 * latency (LLC ring + memory controller), which is how μSKU's knob 2
 * takes effect; the MBA knob throttles the near tier's deliverable
 * bandwidth (resctrl MB percentages).
 *
 * TieredMemoryModel layers an optional far tier (platforms that declare
 * a FarMemorySpec) with its own queueing curve on top: a page-placement
 * ratio decides how much of the footprint lives far, a promotion policy
 * migrates hot pages back near (spending migration bandwidth on both
 * tiers — more when the pages are huge), and the resolved operating
 * point blends the two curves.  Without a far tier the model delegates
 * bit-exactly to the near DramModel, so legacy platforms are unchanged.
 */

#ifndef SOFTSKU_MEM_DRAM_HH
#define SOFTSKU_MEM_DRAM_HH

#include <string>
#include <vector>

#include "arch/platform.hh"

namespace softsku {

/**
 * Promotion/demotion aggressiveness presets for the far-memory tier
 * (the tier_policy knob).  Static places pages once and never migrates;
 * the other presets promote hot far pages at increasing rates, trading
 * migration bandwidth for a smaller far-access fraction.
 */
enum class TierPolicy
{
    Static = 0,
    Conservative,
    Balanced,
    Aggressive,
};

/** Registry key of a tier policy ("static", "balanced", ...). */
std::string tierPolicyName(TierPolicy policy);

/** Parse a tier-policy key; fatal() on unknown input (user input). */
TierPolicy tierPolicyFromString(const std::string &text);

/** All presets, least to most aggressive. */
std::vector<TierPolicy> allTierPolicies();

/** Resolved memory-system operating point. */
struct MemoryOperatingPoint
{
    double demandGBs = 0.0;      //!< what the cores asked for
    double achievedGBs = 0.0;    //!< what the DRAM delivered
    double latencyNs = 0.0;      //!< average loaded latency
    /** >1 when demand exceeds deliverable bandwidth (stall inflation). */
    double backpressure = 1.0;

    /** Exact equality — the batched/scalar bit-identity tests' probe. */
    bool operator==(const MemoryOperatingPoint &) const = default;
};

/** Queuing model of one platform's memory system. */
class DramModel
{
  public:
    /**
     * @param platform   supplies peak bandwidth and unloaded latency
     * @param uncoreGHz  current uncore frequency setting
     * @param mbaPercent resctrl MB throttle (100 = unthrottled; lower
     *                   values scale the deliverable peak down)
     */
    DramModel(const PlatformSpec &platform, double uncoreGHz,
              int mbaPercent = 100);

    /** Loaded latency at a given *achieved* bandwidth (the Fig 12 curve). */
    double latencyNs(double bandwidthGBs) const;

    /** Latency with no load. */
    double unloadedLatencyNs() const;

    /** Peak deliverable bandwidth at the current uncore frequency. */
    double peakBandwidthGBs() const { return peakGBs_; }

    /**
     * Resolve a demand to an operating point: demand beyond the
     * saturation knee is delivered at the knee and the excess shows up
     * as backpressure (extra stall cycles per access).
     */
    MemoryOperatingPoint resolve(double demandGBs) const;

    /** LLC hit latency (ns) at the current uncore frequency. */
    double llcLatencyNs() const;

    /** Page-walk latency (ns) at the current uncore frequency. */
    double pageWalkLatencyNs() const;

    double uncoreGHz() const { return uncoreGHz_; }

  private:
    const PlatformSpec &platform_;
    double uncoreGHz_;
    double peakGBs_;
    double baseLatencyNs_;
};

/**
 * The near (DRAM) tier plus the platform's optional far (CXL-style)
 * tier, resolved together.
 *
 * Placement: @p farMemRatio of the footprint (its coldest pages) lives
 * on the far tier, so the far *access* fraction is sub-linear in the
 * ratio.  Promotion: the tier policy migrates hot far pages back near,
 * shrinking the far-access fraction further at the cost of migration
 * traffic charged to both tiers — and huge pages are costlier to
 * migrate, which is how the PageMapper's 2 MiB coverage feeds back into
 * the model.  The resolved operating point blends the two queueing
 * curves by access fraction.
 *
 * With no far tier (or a zero ratio) resolve() delegates bit-exactly to
 * the near DramModel, keeping legacy platforms byte-identical.
 */
class TieredMemoryModel
{
  public:
    TieredMemoryModel(const PlatformSpec &platform, double uncoreGHz,
                      int mbaPercent = 100,
                      TierPolicy policy = TierPolicy::Static,
                      double farMemRatio = 0.0);

    /** The near-tier (DRAM) queueing model. */
    const DramModel &near() const { return near_; }

    /** True when the platform declares a far tier. */
    bool hasFarTier() const { return platform_.farMemory.present; }

    /** True when traffic actually splits across two tiers. */
    bool engaged() const { return hasFarTier() && farMemRatio_ > 0.0; }

    /** Fraction of accesses served by the far tier after promotion. */
    double farAccessFraction() const;

    /** Page-migration traffic (GB/s) the policy spends on both tiers. */
    double migrationGBs(double demandGBs, double hugeFraction) const;

    /** Far-tier loaded latency at a given far-tier bandwidth. */
    double farLatencyNs(double bandwidthGBs) const;

    /** Far-tier peak bandwidth (0 without a far tier). */
    double farPeakBandwidthGBs() const { return farPeakGBs_; }

    /**
     * Resolve a demand against both tiers.  @p hugeFraction is the
     * share of the footprint on 2 MiB pages (PageMapper), which raises
     * the migration cost.  Delegates to near().resolve() when the far
     * tier is not engaged.
     */
    MemoryOperatingPoint resolve(double demandGBs,
                                 double hugeFraction = 0.0) const;

    TierPolicy policy() const { return policy_; }
    double farMemRatio() const { return farMemRatio_; }

  private:
    const PlatformSpec &platform_;
    DramModel near_;
    TierPolicy policy_;
    double farMemRatio_;
    double farPeakGBs_;
    double farBaseLatencyNs_;
};

} // namespace softsku

#endif // SOFTSKU_MEM_DRAM_HH
