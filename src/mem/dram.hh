/**
 * @file
 * DRAM bandwidth/latency queuing model.
 *
 * Fig 12 of the paper characterizes each platform with a memory stress
 * test: latency sits on a horizontal asymptote at the unloaded value,
 * then grows exponentially as offered load approaches saturation.  The
 * model reproduces that curve and resolves a *demand* bandwidth to an
 * achieved (bandwidth, latency, backpressure) operating point.  Uncore
 * frequency scales the on-die portion of the latency (LLC ring + memory
 * controller), which is how μSKU's knob 2 takes effect.
 */

#ifndef SOFTSKU_MEM_DRAM_HH
#define SOFTSKU_MEM_DRAM_HH

#include "arch/platform.hh"

namespace softsku {

/** Resolved memory-system operating point. */
struct MemoryOperatingPoint
{
    double demandGBs = 0.0;      //!< what the cores asked for
    double achievedGBs = 0.0;    //!< what the DRAM delivered
    double latencyNs = 0.0;      //!< average loaded latency
    /** >1 when demand exceeds deliverable bandwidth (stall inflation). */
    double backpressure = 1.0;
};

/** Queuing model of one platform's memory system. */
class DramModel
{
  public:
    /**
     * @param platform  supplies peak bandwidth and unloaded latency
     * @param uncoreGHz current uncore frequency setting
     */
    DramModel(const PlatformSpec &platform, double uncoreGHz);

    /** Loaded latency at a given *achieved* bandwidth (the Fig 12 curve). */
    double latencyNs(double bandwidthGBs) const;

    /** Latency with no load. */
    double unloadedLatencyNs() const;

    /** Peak deliverable bandwidth at the current uncore frequency. */
    double peakBandwidthGBs() const { return peakGBs_; }

    /**
     * Resolve a demand to an operating point: demand beyond the
     * saturation knee is delivered at the knee and the excess shows up
     * as backpressure (extra stall cycles per access).
     */
    MemoryOperatingPoint resolve(double demandGBs) const;

    /** LLC hit latency (ns) at the current uncore frequency. */
    double llcLatencyNs() const;

    /** Page-walk latency (ns) at the current uncore frequency. */
    double pageWalkLatencyNs() const;

    double uncoreGHz() const { return uncoreGHz_; }

  private:
    const PlatformSpec &platform_;
    double uncoreGHz_;
    double peakGBs_;
    double baseLatencyNs_;
};

} // namespace softsku

#endif // SOFTSKU_MEM_DRAM_HH
