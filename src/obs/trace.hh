/**
 * @file
 * Flight-recorder span tracer for the sweep/rollout pipeline.
 *
 * The μSKU tool only earns trust at scale if every A/B comparison,
 * retry, validation chunk, and rollout wave leaves a machine-readable
 * record of what happened and where the wall clock went — the same
 * role EMON collection and the ODS store play for the paper's fleet.
 * A ScopedSpan records both:
 *
 *   - wall-clock start/duration (steady_clock), for profiling; and
 *   - deterministic annotations (sim-time, sample counts, comparison
 *     keys) plus a deterministic *path*, for audit.
 *
 * Determinism contract: the PR 1/2 guarantee — reports byte-identical
 * at any --jobs for a fixed seed+plan — extends to the trace's
 * *logical* content.  Spans are buffered per thread and merged at
 * flush by sorting on their paths, which derive only from deterministic
 * data (batch ordinals, slot indices, chunk numbers), never from
 * scheduling.  sortedSpans() / deterministicSummary() are therefore
 * identical for 1, 2, or 8 worker threads; only the wall-clock fields
 * (ts/dur in the Chrome export) differ between runs.
 *
 * Path discipline:
 *   - Spans created on worker threads pass an explicit root path
 *     ({phase, batch, slot}-style) so their order never depends on
 *     which worker ran them.
 *   - Spans created while another span is live on the same thread
 *     (the common single-threaded case) inherit the parent's path plus
 *     a per-parent child ordinal — deterministic because one task runs
 *     its children serially.
 *
 * The tracer is process-global and disabled by default; when disabled
 * every ScopedSpan is a no-op (one relaxed atomic load, no clock
 * read), so instrumentation stays in release builds.  Export is Chrome
 * trace_event JSON, loadable in chrome://tracing and Perfetto.
 */

#ifndef SOFTSKU_OBS_TRACE_HH
#define SOFTSKU_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace softsku {

class Json;

/** Root-path phase prefixes keeping subsystems apart (and ordered). */
constexpr std::uint64_t kTraceUsku = 0;      //!< the tool's main thread
constexpr std::uint64_t kTraceSweep = 1;     //!< A/B comparison tasks
constexpr std::uint64_t kTraceValidate = 2;  //!< prolonged-validation chunks
constexpr std::uint64_t kTraceRollout = 3;   //!< fleet rollout machinery
constexpr std::uint64_t kTraceOrphan = 9;    //!< no parent, no explicit path

/** One finished span, as stored in the per-thread buffers. */
struct SpanRecord
{
    /** Chrome trace_event phase this record maps to. */
    enum class Kind
    {
        Span,     //!< complete event (ph "X")
        Instant,  //!< instant event (ph "i"): faults, cache hits
        Counter,  //!< counter sample (ph "C"): rates over time
    };

    Kind kind = Kind::Span;
    std::string name;
    std::string category;
    /** Deterministic sort key: run tag + explicit/inherited ordinals. */
    std::vector<std::uint64_t> path;
    /** Deterministic annotations (key order = annotation order). */
    std::vector<std::pair<std::string, std::string>> args;
    /** Wall clock, microseconds since the tracer epoch. */
    double wallStartUs = 0.0;
    double wallDurUs = 0.0;
    /** Counter records: the sampled value (usually cumulative). */
    double counterValue = 0.0;
    /** Small per-thread id for the Chrome export's tid field. */
    int tid = 0;

    /** "0.1.3 cat name k=v k=v" — everything except wall clock. */
    std::string deterministicLine() const;
};

/** The process-global span collector. */
class Tracer
{
  public:
    static Tracer &global();

    /** Arm span recording (sets the wall-clock epoch on first call). */
    void enable();
    void disable();
    static bool enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Drop every recorded span (buffers stay registered). */
    void clear();

    /**
     * Tag prepended to every subsequently created root span's path.
     * Lets one process hold several runs (e.g. a bench tuning the same
     * target serially and in parallel) without path collisions.  Set
     * it from one thread, between runs.
     */
    void setRunTag(std::uint64_t tag)
    {
        runTag_.store(tag, std::memory_order_relaxed);
    }
    std::uint64_t runTag() const
    {
        return runTag_.load(std::memory_order_relaxed);
    }

    /**
     * The run tag new root spans on *this thread* will use: the
     * thread-local override installed by TraceTagScope when one is
     * active, the process-global tag otherwise.  Concurrent μSKU runs
     * (the fleet orchestrator) each scope their own tag so their span
     * paths never collide, without touching the global tag.
     */
    static std::uint64_t currentRunTag();

    /** All spans from all threads, merged and path-sorted. */
    std::vector<SpanRecord> sortedSpans() const;

    /**
     * The deterministic view: one deterministicLine() per span, in
     * path-sorted order.  Byte-identical across thread counts for a
     * fixed seed+plan — this is what the tests golden against.
     */
    std::string deterministicSummary() const;

    /** Chrome trace_event document ({"traceEvents": [...]}). */
    Json chromeTrace() const;

    /** Serialize chromeTrace() to @p path; false on I/O failure. */
    bool writeChromeTrace(const std::string &path) const;

    /** Number of spans currently recorded. */
    std::size_t spanCount() const;

  private:
    friend class ScopedSpan;
    friend void traceInstant(const char *category, const char *name);
    friend void traceCounter(const char *category, const char *name,
                             double value);

    struct ThreadBuffer
    {
        std::mutex mutex;
        std::vector<SpanRecord> records;
        int tid = 0;
    };

    Tracer() = default;

    /** This thread's buffer, registering it on first use. */
    ThreadBuffer &threadBuffer();
    void append(SpanRecord &&record);
    double nowUs() const;

    static std::atomic<bool> enabled_;
    std::atomic<std::uint64_t> runTag_{0};
    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
    /** Wall-clock epoch (steady_clock seconds), set at first enable. */
    double epochSec_ = 0.0;
    bool epochSet_ = false;
};

/**
 * RAII span: constructed where the work starts, annotated along the
 * way, committed to the tracer at scope exit.  Non-copyable; create on
 * the stack.  All methods are no-ops while tracing is disabled.
 */
class ScopedSpan
{
  public:
    /**
     * A child span: inherits the innermost live span's path on this
     * thread plus a per-parent ordinal.  Without a live parent the
     * span files under kTraceOrphan with a per-thread sequence — fine
     * for single-threaded use, but worker-thread instrumentation
     * should use the explicit-root constructor instead.
     */
    ScopedSpan(const char *category, std::string name);

    /**
     * A root span with an explicit deterministic path (the run tag is
     * prepended automatically).  Use this on worker threads, where the
     * thread-local parent chain says nothing about logical order.
     */
    ScopedSpan(const char *category, std::string name,
               std::initializer_list<std::uint64_t> rootPath);

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan();

    /** Deterministic annotations.  Doubles use "%.9g" so the summary
     *  is byte-stable; never annotate wall-clock values. */
    void arg(const char *key, const std::string &value);
    void arg(const char *key, const char *value);
    void arg(const char *key, std::uint64_t value);
    void arg(const char *key, long long value);
    void arg(const char *key, double value);
    void arg(const char *key, bool value);

    bool active() const { return active_; }

  private:
    friend void traceInstant(const char *category, const char *name);
    friend void traceCounter(const char *category, const char *name,
                             double value);

    void open(const char *category, std::string name);

    bool active_ = false;
    ScopedSpan *parent_ = nullptr;
    std::uint64_t children_ = 0;
    SpanRecord record_;
};

/**
 * RAII thread-local run-tag override.  While alive, every root span
 * created on this thread files under @p tag instead of the tracer's
 * global tag.  Worker tasks that may run on any pool thread (the sweep
 * engine, validation chunks) re-establish their driver's tag with one
 * of these, so several μSKU runs can share one thread pool without
 * their trace paths interleaving.  A tag of 0 installs no override.
 */
class TraceTagScope
{
  public:
    explicit TraceTagScope(std::uint64_t tag);
    TraceTagScope(const TraceTagScope &) = delete;
    TraceTagScope &operator=(const TraceTagScope &) = delete;
    ~TraceTagScope();

  private:
    bool installed_ = false;
    bool hadPrevious_ = false;
    std::uint64_t previous_ = 0;
};

/**
 * Record one instant event (Chrome ph "i"): a point in time with no
 * duration — a fault injection, a cache hit, a rollback.  Takes the
 * innermost live span's path on this thread (plus a child ordinal), so
 * emit it where a deterministic span is live.  No-op while disabled.
 */
void traceInstant(const char *category, const char *name);

/**
 * Record one counter sample (Chrome ph "C"): Perfetto graphs the
 * series of samples with the same @p name over wall time.  Pass the
 * *cumulative* value so the graph's slope is the rate.  Pathing as
 * traceInstant.  No-op while disabled.
 */
void traceCounter(const char *category, const char *name, double value);

} // namespace softsku

#endif // SOFTSKU_OBS_TRACE_HH
