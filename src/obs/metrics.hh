/**
 * @file
 * Flight-recorder metrics registry: named counters, gauges, and
 * histograms for the sweep/rollout pipeline — the reproduction's
 * stand-in for the paper's ODS per-tool telemetry.
 *
 * Scope discipline is what keeps the PR 1/2 determinism contract
 * alive.  Every metric is either:
 *
 *   - Deterministic: derived only from simulated state (sample counts,
 *     fault events, sim-time latencies).  These serialize into the
 *     "metrics" section of the report JSON, which is byte-compared
 *     across --jobs values by the benches and tests.  Deterministic
 *     *histograms* must additionally be populated from a
 *     deterministic-order context (the sweep's sequential commit
 *     loop), because their mean accumulates floating point in add
 *     order.  Deterministic *counters* may be bumped from any thread —
 *     integer sums are order-free.
 *
 *   - Operational: wall-clock or scheduling facts (thread-pool steal
 *     counts, queue depth, per-comparison wall latency).  These never
 *     enter the report body; they appear only in the human --metrics
 *     table and in traces.
 *
 * A registry is instantiable (μSKU owns one per tool so concurrent
 * runs and serial-vs-parallel byte-compares don't cross-contaminate);
 * MetricsRegistry::global() serves process-wide instrumentation like
 * the thread pool and environment plumbing.
 */

#ifndef SOFTSKU_OBS_METRICS_HH
#define SOFTSKU_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/histogram.hh"
#include "util/json.hh"

namespace softsku {

/** Whether a metric may enter the byte-compared report body. */
enum class MetricScope { Deterministic, Operational };

const char *metricScopeName(MetricScope scope);

/** One metric's value at snapshot time. */
struct MetricRow
{
    enum class Kind { Counter, Gauge, Histogram };

    std::string name;
    Kind kind = Kind::Counter;
    MetricScope scope = MetricScope::Deterministic;
    /** Counter/gauge value (counters are integral). */
    double value = 0.0;
    /** Histogram summary. */
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** A point-in-time, serializable view of a registry. */
struct MetricsSnapshot
{
    std::vector<MetricRow> rows;  //!< sorted by name

    /**
     * Name → value object, in sorted-name order.  Counters emit
     * integers, gauges doubles, histograms {count, mean, p50, p95,
     * p99} objects.  Deterministic byte-for-byte when every row is.
     */
    Json toJson() const;

    /** Human-readable table (util/table) for the --metrics flag. */
    std::string renderTable() const;

    /** Merge @p other's rows in (re-sorting; duplicate names kept). */
    void append(const MetricsSnapshot &other);
};

/**
 * The registry.  Lookup returns a stable reference: metrics are never
 * deleted, so instrumentation may cache the pointer across a run.
 * Lookups take a mutex; the returned Counter/Gauge handles are
 * lock-free, Histogram takes a per-histogram mutex.
 */
class MetricsRegistry
{
  public:
    /** Monotonic event count.  Thread-safe, order-free. */
    class Counter
    {
      public:
        void add(std::uint64_t n = 1)
        {
            value_.fetch_add(n, std::memory_order_relaxed);
        }
        std::uint64_t value() const
        {
            return value_.load(std::memory_order_relaxed);
        }
        void reset() { value_.store(0, std::memory_order_relaxed); }

      private:
        std::atomic<std::uint64_t> value_{0};
    };

    /** Last-write-wins instantaneous value. */
    class Gauge
    {
      public:
        void set(double v) { value_.store(v, std::memory_order_relaxed); }
        double value() const
        {
            return value_.load(std::memory_order_relaxed);
        }
        void reset() { value_.store(0.0, std::memory_order_relaxed); }

      private:
        std::atomic<double> value_{0.0};
    };

    /** Log-binned distribution (LogHistogram under a mutex). */
    class Histogram
    {
      public:
        Histogram(double minValue, double maxValue)
            : histogram_(minValue, maxValue)
        {
        }
        void add(double value)
        {
            std::lock_guard<std::mutex> lock(mutex_);
            histogram_.add(value);
        }
        std::uint64_t count() const;
        double mean() const;
        double percentile(double q) const;
        void reset();

      private:
        mutable std::mutex mutex_;
        LogHistogram histogram_;
    };

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Find-or-create.  panic() when @p name exists with a different
     *  kind or scope — one name, one meaning. */
    Counter &counter(const std::string &name,
                     MetricScope scope = MetricScope::Deterministic);
    Gauge &gauge(const std::string &name,
                 MetricScope scope = MetricScope::Deterministic);
    Histogram &histogram(const std::string &name,
                         MetricScope scope = MetricScope::Deterministic,
                         double minValue = 1e-9, double maxValue = 1e6);

    /**
     * Snapshot every registered metric, sorted by name.
     * @param includeOperational false restricts to Deterministic rows
     *        (the report-body view)
     */
    MetricsSnapshot snapshot(bool includeOperational = true) const;

    /** Zero every value; registrations (and references) survive. */
    void reset();

    /** Process-wide registry for subsystem-agnostic instrumentation. */
    static MetricsRegistry &global();

  private:
    struct Entry
    {
        MetricRow::Kind kind;
        MetricScope scope;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &entryFor(const std::string &name, MetricRow::Kind kind,
                    MetricScope scope);

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

} // namespace softsku

#endif // SOFTSKU_OBS_METRICS_HH
