/**
 * @file
 * Sweep timeline reporter: an opt-in live progress line for long
 * sweeps and fleet benches.
 *
 * The sweep engine calls beginBatch() when it fans a comparison batch
 * out to the pool and taskDone() as each comparison lands; the
 * reporter keeps a running mean of per-comparison wall latency and
 * renders "done/total, rate, ETA" to stderr at a bounded refresh rate.
 * Output goes to stderr with carriage-return rewrites, so stdout
 * (reports, tables, JSON) stays clean — and nothing here ever touches
 * the deterministic report body.
 */

#ifndef SOFTSKU_OBS_PROGRESS_HH
#define SOFTSKU_OBS_PROGRESS_HH

#include <cstdio>
#include <mutex>
#include <string>

namespace softsku {

/** Thread-safe live progress line for one sweep. */
class SweepProgress
{
  public:
    /**
     * @param label short prefix, e.g. the service name
     * @param jobs  worker count, used to scale the ETA
     * @param out   destination stream (tests inject a memstream)
     */
    explicit SweepProgress(std::string label, unsigned jobs = 1,
                           std::FILE *out = stderr);

    /** Clears the line if anything was rendered. */
    ~SweepProgress();

    SweepProgress(const SweepProgress &) = delete;
    SweepProgress &operator=(const SweepProgress &) = delete;

    /** Announce @p tasks more comparisons entering measurement. */
    void beginBatch(std::size_t tasks);

    /** One comparison finished after @p wallSec of real time. */
    void taskDone(double wallSec);

    /** Finish the line (newline) and stop updating. */
    void finish();

  private:
    /** Render now when the refresh interval elapsed (caller locks). */
    void render(bool force);

    std::mutex mutex_;
    std::FILE *out_;
    std::string label_;
    unsigned jobs_;
    std::size_t total_ = 0;
    std::size_t done_ = 0;
    double wallSumSec_ = 0.0;
    double startSec_ = 0.0;
    double lastRenderSec_ = 0.0;
    bool rendered_ = false;
    bool finished_ = false;
};

} // namespace softsku

#endif // SOFTSKU_OBS_PROGRESS_HH
