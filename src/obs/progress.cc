#include "obs/progress.hh"

#include <chrono>

#include "util/strings.hh"

namespace softsku {

namespace {

constexpr double kRefreshSec = 0.1;

double
steadySec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

SweepProgress::SweepProgress(std::string label, unsigned jobs,
                             std::FILE *out)
    : out_(out), label_(std::move(label)), jobs_(jobs == 0 ? 1 : jobs),
      startSec_(steadySec())
{
}

SweepProgress::~SweepProgress()
{
    finish();
}

void
SweepProgress::beginBatch(std::size_t tasks)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return;
    total_ += tasks;
    render(true);
}

void
SweepProgress::taskDone(double wallSec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return;
    ++done_;
    wallSumSec_ += wallSec;
    render(done_ == total_);
}

void
SweepProgress::render(bool force)
{
    double now = steadySec();
    if (!force && now - lastRenderSec_ < kRefreshSec)
        return;
    lastRenderSec_ = now;
    rendered_ = true;

    double elapsed = now - startSec_;
    double rate = elapsed > 0.0 ? static_cast<double>(done_) / elapsed
                                : 0.0;
    std::string line = format("%s: %zu/%zu comparisons", label_.c_str(),
                              done_, total_);
    if (rate > 0.0)
        line += format(", %.1f/s", rate);
    if (done_ > 0 && done_ < total_) {
        // ETA from the mean per-comparison wall latency, divided by
        // the worker count actually draining the queue.
        double meanSec = wallSumSec_ / static_cast<double>(done_);
        double etaSec = meanSec * static_cast<double>(total_ - done_) /
                        static_cast<double>(jobs_);
        line += format(", ETA %.0fs", etaSec);
    }
    std::fprintf(out_, "\r%-70s", line.c_str());
    std::fflush(out_);
}

void
SweepProgress::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return;
    finished_ = true;
    if (rendered_) {
        std::fprintf(out_, "\n");
        std::fflush(out_);
    }
}

} // namespace softsku
