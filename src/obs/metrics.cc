#include "obs/metrics.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace softsku {

const char *
metricScopeName(MetricScope scope)
{
    return scope == MetricScope::Deterministic ? "deterministic"
                                               : "operational";
}

std::uint64_t
MetricsRegistry::Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_.count();
}

double
MetricsRegistry::Histogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_.mean();
}

double
MetricsRegistry::Histogram::percentile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_.percentile(q);
}

void
MetricsRegistry::Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.clear();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry &
MetricsRegistry::entryFor(const std::string &name, MetricRow::Kind kind,
                          MetricScope scope)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        if (it->second.kind != kind || it->second.scope != scope) {
            panic("metric '%s' re-registered with a different kind or "
                  "scope", name.c_str());
        }
        return it->second;
    }
    Entry entry;
    entry.kind = kind;
    entry.scope = scope;
    return entries_.emplace(name, std::move(entry)).first->second;
}

MetricsRegistry::Counter &
MetricsRegistry::counter(const std::string &name, MetricScope scope)
{
    Entry &entry = entryFor(name, MetricRow::Kind::Counter, scope);
    if (!entry.counter)
        entry.counter = std::make_unique<Counter>();
    return *entry.counter;
}

MetricsRegistry::Gauge &
MetricsRegistry::gauge(const std::string &name, MetricScope scope)
{
    Entry &entry = entryFor(name, MetricRow::Kind::Gauge, scope);
    if (!entry.gauge)
        entry.gauge = std::make_unique<Gauge>();
    return *entry.gauge;
}

MetricsRegistry::Histogram &
MetricsRegistry::histogram(const std::string &name, MetricScope scope,
                           double minValue, double maxValue)
{
    Entry &entry = entryFor(name, MetricRow::Kind::Histogram, scope);
    if (!entry.histogram)
        entry.histogram = std::make_unique<Histogram>(minValue, maxValue);
    return *entry.histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot(bool includeOperational) const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, entry] : entries_) {
        if (!includeOperational &&
            entry.scope == MetricScope::Operational)
            continue;
        MetricRow row;
        row.name = name;
        row.kind = entry.kind;
        row.scope = entry.scope;
        switch (entry.kind) {
          case MetricRow::Kind::Counter:
            row.value = static_cast<double>(entry.counter->value());
            break;
          case MetricRow::Kind::Gauge:
            row.value = entry.gauge->value();
            break;
          case MetricRow::Kind::Histogram:
            row.count = entry.histogram->count();
            row.mean = entry.histogram->mean();
            row.p50 = entry.histogram->percentile(0.50);
            row.p95 = entry.histogram->percentile(0.95);
            row.p99 = entry.histogram->percentile(0.99);
            break;
        }
        snap.rows.push_back(std::move(row));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, entry] : entries_) {
        (void)name;
        if (entry.counter)
            entry.counter->reset();
        if (entry.gauge)
            entry.gauge->reset();
        if (entry.histogram)
            entry.histogram->reset();
    }
}

Json
MetricsSnapshot::toJson() const
{
    Json doc = Json::object();
    for (const MetricRow &row : rows) {
        switch (row.kind) {
          case MetricRow::Kind::Counter:
            doc.set(row.name,
                    Json(static_cast<long long>(row.value)));
            break;
          case MetricRow::Kind::Gauge:
            doc.set(row.name, Json(row.value));
            break;
          case MetricRow::Kind::Histogram: {
            Json hist = Json::object();
            hist.set("count",
                     Json(static_cast<long long>(row.count)));
            hist.set("mean", Json(row.mean));
            hist.set("p50", Json(row.p50));
            hist.set("p95", Json(row.p95));
            hist.set("p99", Json(row.p99));
            doc.set(row.name, std::move(hist));
            break;
          }
        }
    }
    return doc;
}

std::string
MetricsSnapshot::renderTable() const
{
    TextTable table;
    table.header({"metric", "scope", "value", "count", "mean", "p50",
                  "p95", "p99"});
    for (const MetricRow &row : rows) {
        switch (row.kind) {
          case MetricRow::Kind::Counter:
            table.row({row.name, metricScopeName(row.scope),
                       format("%llu", static_cast<unsigned long long>(
                                          row.value)),
                       "", "", "", "", ""});
            break;
          case MetricRow::Kind::Gauge:
            table.row({row.name, metricScopeName(row.scope),
                       format("%.4g", row.value), "", "", "", "", ""});
            break;
          case MetricRow::Kind::Histogram:
            table.row({row.name, metricScopeName(row.scope), "",
                       format("%llu", static_cast<unsigned long long>(
                                          row.count)),
                       format("%.4g", row.mean),
                       format("%.4g", row.p50),
                       format("%.4g", row.p95),
                       format("%.4g", row.p99)});
            break;
        }
    }
    return table.render();
}

void
MetricsSnapshot::append(const MetricsSnapshot &other)
{
    rows.insert(rows.end(), other.rows.begin(), other.rows.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const MetricRow &a, const MetricRow &b) {
                         return a.name < b.name;
                     });
}

} // namespace softsku
