#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "util/json.hh"
#include "util/strings.hh"

namespace softsku {

namespace {

/** Innermost live span on this thread (nullptr outside any span). */
thread_local ScopedSpan *tlCurrent = nullptr;

/** Ordinal for parentless child-constructed spans on this thread. */
thread_local std::uint64_t tlOrphanSeq = 0;

/** Thread-local run-tag override (TraceTagScope). */
thread_local bool tlTagSet = false;
thread_local std::uint64_t tlTag = 0;

double
steadySec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

std::atomic<bool> Tracer::enabled_{false};

std::string
SpanRecord::deterministicLine() const
{
    std::string line;
    for (size_t i = 0; i < path.size(); ++i) {
        if (i)
            line += '.';
        line += format("%llu", static_cast<unsigned long long>(path[i]));
    }
    line += ' ';
    line += category;
    line += ' ';
    line += name;
    for (const auto &[key, value] : args) {
        line += ' ';
        line += key;
        line += '=';
        line += value;
    }
    return line;
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

std::uint64_t
Tracer::currentRunTag()
{
    return tlTagSet ? tlTag : global().runTag();
}

TraceTagScope::TraceTagScope(std::uint64_t tag)
{
    if (tag == 0)
        return;
    installed_ = true;
    hadPrevious_ = tlTagSet;
    previous_ = tlTag;
    tlTagSet = true;
    tlTag = tag;
}

TraceTagScope::~TraceTagScope()
{
    if (!installed_)
        return;
    tlTagSet = hadPrevious_;
    tlTag = previous_;
}

void
Tracer::enable()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!epochSet_) {
        epochSec_ = steadySec();
        epochSet_ = true;
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        buffer->records.clear();
    }
}

double
Tracer::nowUs() const
{
    return (steadySec() - epochSec_) * 1e6;
}

Tracer::ThreadBuffer &
Tracer::threadBuffer()
{
    // The thread_local shared_ptr keeps the buffer alive for this
    // thread; the registry keeps it alive for flush-after-exit.
    thread_local std::shared_ptr<ThreadBuffer> buffer;
    if (!buffer) {
        buffer = std::make_shared<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(mutex_);
        buffer->tid = static_cast<int>(buffers_.size()) + 1;
        buffers_.push_back(buffer);
    }
    return *buffer;
}

void
Tracer::append(SpanRecord &&record)
{
    ThreadBuffer &buffer = threadBuffer();
    record.tid = buffer.tid;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.records.push_back(std::move(record));
}

std::vector<SpanRecord>
Tracer::sortedSpans() const
{
    std::vector<SpanRecord> all;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            std::lock_guard<std::mutex> bufferLock(buffer->mutex);
            all.insert(all.end(), buffer->records.begin(),
                       buffer->records.end());
        }
    }
    std::sort(all.begin(), all.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.name != b.name)
                      return a.name < b.name;
                  if (a.args != b.args)
                      return a.args < b.args;
                  // Identical logical spans: fall back to wall clock;
                  // instrumentation sites keep paths unique so this
                  // tie-break never decides the deterministic summary.
                  return a.wallStartUs < b.wallStartUs;
              });
    return all;
}

std::size_t
Tracer::spanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        n += buffer->records.size();
    }
    return n;
}

std::string
Tracer::deterministicSummary() const
{
    std::string out;
    for (const SpanRecord &record : sortedSpans()) {
        out += record.deterministicLine();
        out += '\n';
    }
    return out;
}

Json
Tracer::chromeTrace() const
{
    Json events = Json::array();
    for (const SpanRecord &record : sortedSpans()) {
        Json event = Json::object();
        event.set("name", Json(record.name));
        event.set("cat", Json(record.category));
        if (record.kind == SpanRecord::Kind::Counter) {
            // Counter sample: Perfetto graphs the "value" series of
            // same-named C events over time; args must stay numeric.
            event.set("ph", Json("C"));
            event.set("ts", Json(record.wallStartUs));
            event.set("pid", Json(1));
            event.set("tid", Json(record.tid));
            Json args = Json::object();
            args.set("value", Json(record.counterValue));
            event.set("args", std::move(args));
            events.push(std::move(event));
            continue;
        }
        if (record.kind == SpanRecord::Kind::Instant) {
            event.set("ph", Json("i"));
            event.set("ts", Json(record.wallStartUs));
            event.set("s", Json("t"));  // thread-scoped instant
            event.set("pid", Json(1));
            event.set("tid", Json(record.tid));
        } else {
            event.set("ph", Json("X"));
            event.set("ts", Json(record.wallStartUs));
            event.set("dur", Json(record.wallDurUs));
            event.set("pid", Json(1));
            event.set("tid", Json(record.tid));
        }
        Json args = Json::object();
        for (const auto &[key, value] : record.args)
            args.set(key, Json(value));
        std::string pathStr;
        for (size_t i = 0; i < record.path.size(); ++i) {
            if (i)
                pathStr += '.';
            pathStr += format("%llu",
                              static_cast<unsigned long long>(
                                  record.path[i]));
        }
        args.set("path", Json(pathStr));
        event.set("args", std::move(args));
        events.push(std::move(event));
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ms"));
    return doc;
}

bool
Tracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << chromeTrace().dump(1) << '\n';
    return static_cast<bool>(out);
}

void
ScopedSpan::open(const char *category, std::string name)
{
    active_ = true;
    record_.category = category;
    record_.name = std::move(name);
    record_.wallStartUs = Tracer::global().nowUs();
    parent_ = tlCurrent;
    tlCurrent = this;
}

ScopedSpan::ScopedSpan(const char *category, std::string name)
{
    if (!Tracer::enabled())
        return;
    open(category, std::move(name));
    if (parent_ && parent_->active_) {
        record_.path = parent_->record_.path;
        record_.path.push_back(++parent_->children_);
    } else {
        record_.path = {Tracer::currentRunTag(), kTraceOrphan,
                        ++tlOrphanSeq};
    }
}

ScopedSpan::ScopedSpan(const char *category, std::string name,
                       std::initializer_list<std::uint64_t> rootPath)
{
    if (!Tracer::enabled())
        return;
    open(category, std::move(name));
    record_.path.reserve(rootPath.size() + 1);
    record_.path.push_back(Tracer::currentRunTag());
    record_.path.insert(record_.path.end(), rootPath.begin(),
                        rootPath.end());
}

void
traceInstant(const char *category, const char *name)
{
    if (!Tracer::enabled())
        return;
    SpanRecord record;
    record.kind = SpanRecord::Kind::Instant;
    record.category = category;
    record.name = name;
    record.wallStartUs = Tracer::global().nowUs();
    // Point events path like child spans: under the innermost live
    // span (with a child ordinal), or in the orphan lane without one.
    if (tlCurrent && tlCurrent->active_) {
        record.path = tlCurrent->record_.path;
        record.path.push_back(++tlCurrent->children_);
    } else {
        record.path = {Tracer::currentRunTag(), kTraceOrphan,
                       ++tlOrphanSeq};
    }
    Tracer::global().append(std::move(record));
}

void
traceCounter(const char *category, const char *name, double value)
{
    if (!Tracer::enabled())
        return;
    SpanRecord record;
    record.kind = SpanRecord::Kind::Counter;
    record.category = category;
    record.name = name;
    record.counterValue = value;
    record.args.emplace_back("value", format("%.9g", value));
    record.wallStartUs = Tracer::global().nowUs();
    if (tlCurrent && tlCurrent->active_) {
        record.path = tlCurrent->record_.path;
        record.path.push_back(++tlCurrent->children_);
    } else {
        record.path = {Tracer::currentRunTag(), kTraceOrphan,
                       ++tlOrphanSeq};
    }
    Tracer::global().append(std::move(record));
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    tlCurrent = parent_;
    Tracer &tracer = Tracer::global();
    record_.wallDurUs = tracer.nowUs() - record_.wallStartUs;
    tracer.append(std::move(record_));
}

void
ScopedSpan::arg(const char *key, const std::string &value)
{
    if (active_)
        record_.args.emplace_back(key, value);
}

void
ScopedSpan::arg(const char *key, const char *value)
{
    if (active_)
        record_.args.emplace_back(key, value);
}

void
ScopedSpan::arg(const char *key, std::uint64_t value)
{
    if (active_)
        record_.args.emplace_back(
            key, format("%llu", static_cast<unsigned long long>(value)));
}

void
ScopedSpan::arg(const char *key, long long value)
{
    if (active_)
        record_.args.emplace_back(key, format("%lld", value));
}

void
ScopedSpan::arg(const char *key, double value)
{
    if (active_)
        record_.args.emplace_back(key, format("%.9g", value));
}

void
ScopedSpan::arg(const char *key, bool value)
{
    if (active_)
        record_.args.emplace_back(key, value ? "true" : "false");
}

} // namespace softsku
