#include "tlb/tlb.hh"

#include "os/hugepage.hh"
#include "util/logging.hh"

namespace softsku {

Tlb::Array
Tlb::makeArray(int entries, int ways)
{
    Array arr;
    if (entries <= 0) {
        arr.sets = 0;
        arr.ways = 0;
        return arr;
    }
    arr.ways = std::min(ways, entries);
    arr.sets = static_cast<std::uint64_t>(entries / arr.ways);
    if (arr.sets == 0)
        arr.sets = 1;
    arr.entries.assign(arr.sets * static_cast<std::uint64_t>(arr.ways),
                       Entry{});
    return arr;
}

Tlb::Tlb(std::string name, const TlbGeometry &geometry)
    : name_(std::move(name)),
      array4k_(makeArray(geometry.entries4k, geometry.ways)),
      array2m_(makeArray(geometry.entries2m, geometry.ways))
{
}

bool
Tlb::lookupIn(Array &arr, std::uint64_t pageNumber, bool allocate)
{
    if (arr.sets == 0)
        return false;
    std::uint64_t setIndex = pageNumber % arr.sets;
    Entry *set = &arr.entries[setIndex * static_cast<std::uint64_t>(arr.ways)];
    ++useClock_;

    for (int w = 0; w < arr.ways; ++w) {
        if (set[w].valid && set[w].pageNumber == pageNumber) {
            set[w].lastUse = useClock_;
            return true;
        }
    }
    if (!allocate)
        return false;

    int victim = 0;
    std::uint64_t oldest = ~0ULL;
    for (int w = 0; w < arr.ways; ++w) {
        if (!set[w].valid) {
            victim = w;
            break;
        }
        if (set[w].lastUse < oldest) {
            oldest = set[w].lastUse;
            victim = w;
        }
    }
    set[victim] = {pageNumber, useClock_, true};
    return false;
}

bool
Tlb::access(std::uint64_t vaddr, std::uint64_t pageBytes)
{
    SOFTSKU_ASSERT(pageBytes == kPage4k || pageBytes == kPage2m);
    ++stats_.accesses;
    bool huge = pageBytes == kPage2m;
    std::uint64_t pageNumber = vaddr / pageBytes;
    bool hit = lookupIn(huge ? array2m_ : array4k_, pageNumber, true);
    if (!hit) {
        ++stats_.misses;
        if (huge)
            ++stats_.misses2m;
        else
            ++stats_.misses4k;
    }
    return hit;
}

bool
Tlb::probe(std::uint64_t vaddr, std::uint64_t pageBytes) const
{
    bool huge = pageBytes == kPage2m;
    const Array &arr = huge ? array2m_ : array4k_;
    if (arr.sets == 0)
        return false;
    std::uint64_t pageNumber = vaddr / pageBytes;
    std::uint64_t setIndex = pageNumber % arr.sets;
    const Entry *set =
        &arr.entries[setIndex * static_cast<std::uint64_t>(arr.ways)];
    for (int w = 0; w < arr.ways; ++w) {
        if (set[w].valid && set[w].pageNumber == pageNumber)
            return true;
    }
    return false;
}

void
Tlb::flush()
{
    for (Entry &e : array4k_.entries)
        e.valid = false;
    for (Entry &e : array2m_.entries)
        e.valid = false;
}

void
Tlb::disturb(double fraction, Rng &rng)
{
    if (fraction <= 0.0)
        return;
    for (Entry &e : array4k_.entries) {
        if (e.valid && rng.chance(fraction))
            e.valid = false;
    }
    for (Entry &e : array2m_.entries) {
        if (e.valid && rng.chance(fraction))
            e.valid = false;
    }
}

std::uint64_t
Tlb::reachBytes() const
{
    return array4k_.entries.size() * kPage4k +
           array2m_.entries.size() * kPage2m;
}

TwoLevelTlb::TwoLevelTlb(std::string name, const TlbGeometry &l1Geometry,
                         const TlbGeometry &stlbGeometry)
    : l1_(name + ".l1", l1Geometry), stlb_(name + ".stlb", stlbGeometry)
{
}

TwoLevelTlb::Outcome
TwoLevelTlb::access(std::uint64_t vaddr, std::uint64_t pageBytes)
{
    if (l1_.access(vaddr, pageBytes))
        return Outcome::L1Hit;
    if (stlb_.access(vaddr, pageBytes))
        return Outcome::StlbHit;
    ++walks_;
    return Outcome::PageWalk;
}

void
TwoLevelTlb::flush()
{
    l1_.flush();
    stlb_.flush();
}

void
TwoLevelTlb::disturb(double fraction, Rng &rng)
{
    l1_.disturb(fraction, rng);
    stlb_.disturb(fraction, rng);
}

} // namespace softsku
