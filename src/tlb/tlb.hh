/**
 * @file
 * Two-level TLB model with mixed 4 KiB / 2 MiB pages.
 *
 * ITLB and DTLB miss rates (paper Fig 11) drive the huge-page knobs:
 * THP/SHP move regions onto 2 MiB pages, multiplying TLB reach by 512
 * for covered bytes.  The model keeps separate entry arrays per page
 * size in the first level (as Intel cores do) and a unified
 * second-level STLB; misses cost a page walk.
 */

#ifndef SOFTSKU_TLB_TLB_HH
#define SOFTSKU_TLB_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/platform.hh"
#include "stats/rng.hh"

namespace softsku {

/** Hit/miss counters for one TLB level. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t misses4k = 0;
    std::uint64_t misses2m = 0;

    double mpki(std::uint64_t instructions) const
    {
        if (instructions == 0)
            return 0.0;
        return static_cast<double>(misses) * 1000.0 /
               static_cast<double>(instructions);
    }

    void clear() { *this = TlbStats(); }

    /** Exact equality — the batched/scalar bit-identity tests' probe. */
    bool operator==(const TlbStats &) const = default;
};

/**
 * One TLB level: separate set-associative arrays for 4 KiB and 2 MiB
 * translations (entries per the platform's TlbGeometry).
 */
class Tlb
{
  public:
    Tlb(std::string name, const TlbGeometry &geometry);

    /**
     * Translate the page containing @p vaddr.
     * @param vaddr     virtual byte address
     * @param pageBytes backing page size (4 KiB or 2 MiB)
     * @return true on hit; on miss the translation is installed
     */
    bool access(std::uint64_t vaddr, std::uint64_t pageBytes);

    /** Non-allocating presence check. */
    bool probe(std::uint64_t vaddr, std::uint64_t pageBytes) const;

    /** Drop every translation (full flush, e.g. address-space switch). */
    void flush();

    /** Invalidate a random fraction of entries (context-switch churn). */
    void disturb(double fraction, Rng &rng);

    const TlbStats &stats() const { return stats_; }
    TlbStats &stats() { return stats_; }
    const std::string &name() const { return name_; }

    /** Total translatable bytes if every entry were used (reach). */
    std::uint64_t reachBytes() const;

  private:
    struct Entry
    {
        std::uint64_t pageNumber = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    struct Array
    {
        std::vector<Entry> entries;
        std::uint64_t sets = 0;
        int ways = 0;
    };

    bool lookupIn(Array &arr, std::uint64_t pageNumber, bool allocate);
    static Array makeArray(int entries, int ways);

    std::string name_;
    Array array4k_;
    Array array2m_;
    std::uint64_t useClock_ = 0;
    TlbStats stats_;
};

/**
 * A private two-level TLB: an L1 for the access's kind (ITLB or DTLB)
 * backed by a unified STLB shared between code and data.  Returns how
 * deep the translation had to go so the CPI model can charge the right
 * latency.
 */
class TwoLevelTlb
{
  public:
    /** Where a translation was satisfied. */
    enum class Outcome { L1Hit, StlbHit, PageWalk };

    TwoLevelTlb(std::string name, const TlbGeometry &l1Geometry,
                const TlbGeometry &stlbGeometry);

    /** Translate; installs into both levels on a walk. */
    Outcome access(std::uint64_t vaddr, std::uint64_t pageBytes);

    /** Flush both levels. */
    void flush();

    /** Disturb both levels (context switch). */
    void disturb(double fraction, Rng &rng);

    const Tlb &l1() const { return l1_; }
    const Tlb &stlb() const { return stlb_; }
    Tlb &l1() { return l1_; }
    Tlb &stlb() { return stlb_; }

    /** Page walks performed. */
    std::uint64_t walks() const { return walks_; }

  private:
    Tlb l1_;
    Tlb stlb_;
    std::uint64_t walks_ = 0;
};

} // namespace softsku

#endif // SOFTSKU_TLB_TLB_HH
