/**
 * @file
 * Hardware platform descriptions (the paper's Table 1).
 *
 * Three server SKUs host the seven microservices: Skylake18 (1×18 cores),
 * Skylake20 (2×20 cores), and Broadwell16 (1×16 cores).  A PlatformSpec
 * carries every parameter the performance model needs: cache and TLB
 * geometry, frequency-domain ranges, prefetcher complement, DRAM
 * bandwidth/latency, and RDT (CAT/CDP) capability.
 */

#ifndef SOFTSKU_ARCH_PLATFORM_HH
#define SOFTSKU_ARCH_PLATFORM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace softsku {

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    int ways = 0;
    int lineBytes = 64;

    std::uint64_t sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) * lineBytes);
    }
};

/** Geometry of one TLB level for one page size. */
struct TlbGeometry
{
    int entries4k = 0;      //!< entries for 4 KiB pages
    int entries2m = 0;      //!< entries for 2 MiB pages
    int ways = 4;
};

/**
 * An optional far-memory tier (CXL-style memory expander) behind the
 * DRAM tier.  Platforms that declare one unlock the memory-tier knobs
 * (mba, tier_policy, far_mem_ratio): the two-tier queueing model in
 * mem/dram resolves traffic against both tiers, and the kernel's
 * tiering policy migrates hot pages between them.
 */
struct FarMemorySpec
{
    bool present = false;
    /** Sustained link bandwidth of the far tier (GB/s). */
    double peakBandwidthGBs = 0.0;
    /** Link + far-controller latency added on top of the near path (ns). */
    double extraLatencyNs = 0.0;
    /** Kernel-default cold-page placement ratio on a fresh install. */
    double defaultRatio = 0.0;
};

/** Which of the four Intel prefetchers exist/are enabled. */
struct PrefetcherSet
{
    bool l2Stream = true;       //!< "L2 hardware prefetcher"
    bool l2Adjacent = true;     //!< L2 adjacent-cache-line prefetcher
    bool dcuNext = true;        //!< DCU next-line prefetcher
    bool dcuIp = true;          //!< DCU IP (stride) prefetcher

    bool operator==(const PrefetcherSet &) const = default;
};

/**
 * A server CPU SKU.  Field values for the three fleet platforms mirror
 * the paper's Table 1 plus public Intel documentation for parameters the
 * paper does not list (TLB geometry, DRAM channels).
 */
struct PlatformSpec
{
    std::string name;                 //!< registry key, e.g. "skylake18"
    std::string microarchitecture;    //!< e.g. "Intel Skylake"
    int sockets = 1;
    int coresPerSocket = 0;
    int smtWays = 2;

    CacheGeometry l1i;                //!< per core
    CacheGeometry l1d;                //!< per core
    CacheGeometry l2;                 //!< per core, unified
    CacheGeometry llc;                //!< per socket, shared, unified

    TlbGeometry itlb;                 //!< per core L1 ITLB
    TlbGeometry dtlb;                 //!< per core L1 DTLB
    TlbGeometry stlb;                 //!< per core shared second level

    double coreFreqMinGHz = 1.6;
    double coreFreqMaxGHz = 2.2;      //!< sustained all-core turbo
    double coreFreqStepGHz = 0.1;
    double uncoreFreqMinGHz = 1.4;
    double uncoreFreqMaxGHz = 1.8;
    double uncoreFreqStepGHz = 0.1;

    /** DRAM peak bandwidth for the whole platform (GB/s). */
    double peakMemBandwidthGBs = 0.0;
    /** Unloaded load-to-use memory latency at max uncore freq (ns). */
    double unloadedMemLatencyNs = 85.0;
    int memChannelsPerSocket = 6;

    /** Pipeline width used for TMAM slot accounting. */
    int issueWidth = 4;
    /** Theoretical peak IPC quoted in the paper (Skylake: 5.0). */
    double peakIpc = 5.0;
    /** Branch misprediction pipeline refill penalty (cycles). */
    double mispredictPenaltyCycles = 16.0;
    /** BTB capacity (entries) — drives aliasing for huge code footprints. */
    int btbEntries = 4096;

    PrefetcherSet prefetchers;        //!< which prefetchers exist
    bool supportsRdt = true;          //!< CAT/CDP available
    FarMemorySpec farMemory;          //!< CXL-style far tier, if any

    /** L2 hit latency (cycles at core frequency). */
    double l2LatencyCycles = 14.0;
    /** LLC hit latency (ns at max uncore frequency). */
    double llcLatencyNs = 18.0;
    /** Page-walk latency when the walk hits cached structures (ns). */
    double pageWalkLatencyNs = 30.0;

    /** Total physical cores across sockets. */
    int totalCores() const { return sockets * coresPerSocket; }

    /** LLC capacity of one socket in bytes. */
    std::uint64_t llcBytes() const { return llc.sizeBytes; }

    /** Discrete core frequency settings (min..max by step). */
    std::vector<double> coreFrequencySettings() const;

    /** Discrete uncore frequency settings (min..max by step). */
    std::vector<double> uncoreFrequencySettings() const;
};

/** The Skylake18 fleet platform (Table 1, column 1). */
const PlatformSpec &skylake18();

/** The Skylake20 fleet platform (Table 1, column 2). */
const PlatformSpec &skylake20();

/** The Broadwell16 fleet platform (Table 1, column 3). */
const PlatformSpec &broadwell16();

/**
 * Skylake18 refitted with a CXL-style far-memory expander: the
 * hyperscale-era platform that declares a far tier and therefore
 * exposes the memory-tier knobs (mba, tier_policy, far_mem_ratio).
 */
const PlatformSpec &skylake18cxl();

/**
 * Look up a platform by registry name ("skylake18", "skylake20",
 * "broadwell16", "skylake18cxl"); fatal() on unknown names (user
 * input).
 */
const PlatformSpec &platformByName(const std::string &name);

/** As platformByName, but nullptr on unknown names. */
const PlatformSpec *platformByNameOrNull(const std::string &name);

/** All registered platforms. */
std::vector<const PlatformSpec *> allPlatforms();

} // namespace softsku

#endif // SOFTSKU_ARCH_PLATFORM_HH
