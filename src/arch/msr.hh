/**
 * @file
 * An emulated Model-Specific Register file.
 *
 * μSKU actuates three of its knobs by "overriding MSRs" (Sec. 5 of the
 * paper): core frequency via IA32_PERF_CTL, uncore frequency via
 * MSR_UNCORE_RATIO_LIMIT, and prefetcher enables via
 * MSR_MISC_FEATURE_CONTROL.  The emulated register file keeps that
 * actuation path honest — knob settings round-trip through the same
 * encodings real hardware uses, and the machine model derives its
 * effective configuration by *reading the MSRs back*, not by trusting
 * the knob struct.
 */

#ifndef SOFTSKU_ARCH_MSR_HH
#define SOFTSKU_ARCH_MSR_HH

#include <cstdint>
#include <map>

namespace softsku {

/** Architectural MSR addresses used by the knob actuation path. */
namespace msr {

/** P-state request; bits 15:8 hold the target core ratio (×100 MHz). */
constexpr std::uint32_t IA32_PERF_CTL = 0x199;

/** Uncore ratio limits; bits 6:0 max ratio, 14:8 min ratio (×100 MHz). */
constexpr std::uint32_t UNCORE_RATIO_LIMIT = 0x620;

/**
 * Prefetcher disable bits (set bit = disabled):
 * bit 0 L2 stream, bit 1 L2 adjacent line, bit 2 DCU next line,
 * bit 3 DCU IP stride.
 */
constexpr std::uint32_t MISC_FEATURE_CONTROL = 0x1A4;

} // namespace msr

/**
 * Emulated per-package MSR file.  Reads of never-written registers
 * return the architectural reset value (0).
 */
class MsrFile
{
  public:
    /** Write @p value to register @p index. */
    void write(std::uint32_t index, std::uint64_t value);

    /** Read register @p index (0 if never written). */
    std::uint64_t read(std::uint32_t index) const;

    /** True when the register was ever written. */
    bool touched(std::uint32_t index) const;

    /** Clear all registers to reset values (models a reboot). */
    void reset();

    // -- Typed helpers for the knob encodings ---------------------------

    /** Encode a core frequency request (100 MHz granularity). */
    void setCoreFrequencyGHz(double ghz);

    /** Decode the requested core frequency; @p fallback when unset. */
    double coreFrequencyGHz(double fallback) const;

    /** Encode an uncore max-ratio request (100 MHz granularity). */
    void setUncoreFrequencyGHz(double ghz);

    /** Decode the requested uncore frequency; @p fallback when unset. */
    double uncoreFrequencyGHz(double fallback) const;

    /** Encode prefetcher enables into MISC_FEATURE_CONTROL. */
    void setPrefetchers(bool l2Stream, bool l2Adjacent, bool dcuNext,
                        bool dcuIp);

    struct PrefetcherBits
    {
        bool l2Stream, l2Adjacent, dcuNext, dcuIp;
    };

    /** Decode prefetcher enables (all-enabled when never written). */
    PrefetcherBits prefetchers() const;

  private:
    std::map<std::uint32_t, std::uint64_t> regs_;
};

} // namespace softsku

#endif // SOFTSKU_ARCH_MSR_HH
