#include "arch/topdown.hh"

#include <algorithm>

#include "util/logging.hh"

namespace softsku {

TopDownBreakdown
computeTopDown(const PipelineCosts &costs, int issueWidth)
{
    SOFTSKU_ASSERT(issueWidth > 0);
    TopDownBreakdown out;
    double cycles = costs.totalCycles();
    if (cycles <= 0.0 || costs.instructions <= 0.0)
        return out;

    double slots = cycles * issueWidth;
    double retiringSlots = std::min(costs.instructions, slots);

    // Slots not used for retirement are split across the stall causes
    // in proportion to the cycles each cause contributed; the residual
    // (ILP shortfall during "base" execution) is back-end core-bound.
    double idleSlots = slots - retiringSlots;
    double feCycles = costs.frontEndStallCycles;
    double bsCycles = costs.badSpecCycles;
    double beCycles = costs.backEndStallCycles;

    double baseIdleSlots =
        std::max(0.0, costs.baseCycles * issueWidth - retiringSlots);
    double stallCycles = feCycles + bsCycles + beCycles;

    double feSlots = 0.0, bsSlots = 0.0, beSlots = baseIdleSlots;
    double stallSlots = std::max(0.0, idleSlots - baseIdleSlots);
    if (stallCycles > 0.0) {
        feSlots = stallSlots * feCycles / stallCycles;
        bsSlots = stallSlots * bsCycles / stallCycles;
        beSlots += stallSlots * beCycles / stallCycles;
    } else {
        beSlots += stallSlots;
    }

    out.retiring = retiringSlots / slots;
    out.frontEnd = feSlots / slots;
    out.badSpeculation = bsSlots / slots;
    out.backEnd = beSlots / slots;
    return out;
}

double
ipcOf(const PipelineCosts &costs)
{
    double cycles = costs.totalCycles();
    if (cycles <= 0.0)
        return 0.0;
    return costs.instructions / cycles;
}

} // namespace softsku
