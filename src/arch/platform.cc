#include "arch/platform.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;

PlatformSpec
makeSkylakeBase()
{
    PlatformSpec p;
    p.microarchitecture = "Intel Skylake";
    p.smtWays = 2;
    p.l1i = {32 * kKiB, 8, 64};
    p.l1d = {32 * kKiB, 8, 64};
    p.l2 = {1 * kMiB, 16, 64};
    p.itlb = {128, 16, 8};
    p.dtlb = {64, 32, 4};
    p.stlb = {1536, 1536, 12};
    p.coreFreqMinGHz = 1.6;
    p.coreFreqMaxGHz = 2.2;
    p.uncoreFreqMinGHz = 1.4;
    p.uncoreFreqMaxGHz = 1.8;
    p.unloadedMemLatencyNs = 85.0;
    p.memChannelsPerSocket = 6;
    p.issueWidth = 4;
    p.peakIpc = 5.0;
    p.mispredictPenaltyCycles = 16.0;
    p.btbEntries = 4096;
    p.supportsRdt = true;
    p.l2LatencyCycles = 14.0;
    p.llcLatencyNs = 18.0;
    p.pageWalkLatencyNs = 30.0;
    return p;
}

PlatformSpec
makeSkylake18()
{
    PlatformSpec p = makeSkylakeBase();
    p.name = "skylake18";
    p.sockets = 1;
    p.coresPerSocket = 18;
    // 24.75 MiB shared LLC, 11 ways (Table 1 + CDP sweep in Fig 16a).
    p.llc = {static_cast<std::uint64_t>(24.75 * 1024) * kKiB, 11, 64};
    p.peakMemBandwidthGBs = 115.0;
    return p;
}

PlatformSpec
makeSkylake20()
{
    PlatformSpec p = makeSkylakeBase();
    p.name = "skylake20";
    p.sockets = 2;
    p.coresPerSocket = 20;
    p.llc = {27 * kMiB, 11, 64};
    // Two sockets: the higher-peak-bandwidth platform of Fig 12.
    p.peakMemBandwidthGBs = 150.0;
    return p;
}

PlatformSpec
makeBroadwell16()
{
    PlatformSpec p;
    p.name = "broadwell16";
    p.microarchitecture = "Intel Broadwell";
    p.sockets = 1;
    p.coresPerSocket = 16;
    p.smtWays = 2;
    p.l1i = {32 * kKiB, 8, 64};
    p.l1d = {32 * kKiB, 8, 64};
    p.l2 = {256 * kKiB, 8, 64};
    // 24 MiB LLC with 12 ways (Fig 16b sweeps {1,11}..{11,1}).
    p.llc = {24 * kMiB, 12, 64};
    p.itlb = {128, 8, 4};
    p.dtlb = {64, 32, 4};
    p.stlb = {1024, 1024, 8};
    p.coreFreqMinGHz = 1.6;
    p.coreFreqMaxGHz = 2.2;
    p.uncoreFreqMinGHz = 1.4;
    p.uncoreFreqMaxGHz = 1.8;
    // 4-channel DDR4: the bandwidth-constrained platform that saturates
    // under Web and flips the CDP/prefetcher verdicts (Figs 16b, 17).
    p.peakMemBandwidthGBs = 33.0;
    p.unloadedMemLatencyNs = 90.0;
    p.memChannelsPerSocket = 4;
    p.issueWidth = 4;
    p.peakIpc = 4.0;
    p.mispredictPenaltyCycles = 16.0;
    p.btbEntries = 4096;
    p.supportsRdt = true;
    p.l2LatencyCycles = 12.0;
    p.llcLatencyNs = 20.0;
    p.pageWalkLatencyNs = 32.0;
    return p;
}

PlatformSpec
makeSkylake18Cxl()
{
    PlatformSpec p = makeSkylake18();
    p.name = "skylake18cxl";
    // A x8 CXL 2.0 memory expander: roughly a quarter of the DRAM
    // tier's bandwidth, and ~135 ns of link + far-controller latency on
    // top of the near path.  The kernel places a quarter of each
    // service's (coldest) pages there by default.
    p.farMemory.present = true;
    p.farMemory.peakBandwidthGBs = 28.0;
    p.farMemory.extraLatencyNs = 135.0;
    p.farMemory.defaultRatio = 0.25;
    return p;
}

} // namespace

std::vector<double>
PlatformSpec::coreFrequencySettings() const
{
    std::vector<double> out;
    for (double f = coreFreqMinGHz; f <= coreFreqMaxGHz + 1e-9;
         f += coreFreqStepGHz) {
        out.push_back(std::round(f * 10.0) / 10.0);
    }
    return out;
}

std::vector<double>
PlatformSpec::uncoreFrequencySettings() const
{
    std::vector<double> out;
    for (double f = uncoreFreqMinGHz; f <= uncoreFreqMaxGHz + 1e-9;
         f += uncoreFreqStepGHz) {
        out.push_back(std::round(f * 10.0) / 10.0);
    }
    return out;
}

const PlatformSpec &
skylake18()
{
    static const PlatformSpec spec = makeSkylake18();
    return spec;
}

const PlatformSpec &
skylake20()
{
    static const PlatformSpec spec = makeSkylake20();
    return spec;
}

const PlatformSpec &
broadwell16()
{
    static const PlatformSpec spec = makeBroadwell16();
    return spec;
}

const PlatformSpec &
skylake18cxl()
{
    static const PlatformSpec spec = makeSkylake18Cxl();
    return spec;
}

const PlatformSpec *
platformByNameOrNull(const std::string &name)
{
    std::string key = toLower(name);
    for (const PlatformSpec *platform : allPlatforms()) {
        if (platform->name == key)
            return platform;
    }
    return nullptr;
}

const PlatformSpec &
platformByName(const std::string &name)
{
    if (const PlatformSpec *platform = platformByNameOrNull(name))
        return *platform;
    std::string known;
    for (const PlatformSpec *platform : allPlatforms()) {
        if (!known.empty())
            known += ", ";
        known += platform->name;
    }
    fatal("unknown platform '%s' (expected one of: %s)", name.c_str(),
          known.c_str());
}

std::vector<const PlatformSpec *>
allPlatforms()
{
    return {&skylake18(), &skylake20(), &broadwell16(), &skylake18cxl()};
}

} // namespace softsku
