/**
 * @file
 * Top-down Microarchitecture Analysis Method (TMAM) accounting.
 *
 * The paper classifies pipeline slots into retiring / front-end / bad
 * speculation / back-end (Fig 7, after Yasin's TMAM).  The simulator
 * accumulates stall *cycles* by cause; this module converts them to the
 * slot breakdown and the resulting IPC.
 */

#ifndef SOFTSKU_ARCH_TOPDOWN_HH
#define SOFTSKU_ARCH_TOPDOWN_HH

namespace softsku {

/** Cycle-level cost inputs for one simulated window. */
struct PipelineCosts
{
    double instructions = 0.0;        //!< retired instructions
    double baseCycles = 0.0;          //!< ideal-execution cycles
    double frontEndStallCycles = 0.0; //!< fetch misses, ITLB walks
    double badSpecCycles = 0.0;       //!< misprediction recovery
    double backEndStallCycles = 0.0;  //!< data misses, DTLB walks

    /** Total cycles for the window. */
    double totalCycles() const
    {
        return baseCycles + frontEndStallCycles + badSpecCycles +
               backEndStallCycles;
    }

    /** Exact equality — the batched/scalar bit-identity tests' probe. */
    bool operator==(const PipelineCosts &) const = default;
};

/** Fractions of issue slots by TMAM category; sums to 1. */
struct TopDownBreakdown
{
    double retiring = 0.0;
    double frontEnd = 0.0;
    double badSpeculation = 0.0;
    double backEnd = 0.0;

    /** Sum of the four categories (should be ~1). */
    double total() const
    {
        return retiring + frontEnd + badSpeculation + backEnd;
    }

    /** Exact equality — the batched/scalar bit-identity tests' probe. */
    bool operator==(const TopDownBreakdown &) const = default;
};

/**
 * Convert accumulated cycle costs into the TMAM slot breakdown.
 *
 * Slots are issueWidth × cycles.  Retiring slots are the slots actually
 * used by retired instructions; each stall category claims slots in
 * proportion to its share of stall cycles; base-cycle slots not used for
 * retirement (ILP below the machine width) are charged to the back end,
 * matching how TMAM attributes core-bound dependency stalls.
 *
 * @param costs      accumulated cycle costs
 * @param issueWidth pipeline slots per cycle (4 on Skylake/Broadwell)
 */
TopDownBreakdown computeTopDown(const PipelineCosts &costs, int issueWidth);

/** Instructions per cycle for the window. */
double ipcOf(const PipelineCosts &costs);

} // namespace softsku

#endif // SOFTSKU_ARCH_TOPDOWN_HH
