#include "arch/msr.hh"

#include <cmath>

#include "util/logging.hh"

namespace softsku {

void
MsrFile::write(std::uint32_t index, std::uint64_t value)
{
    regs_[index] = value;
}

std::uint64_t
MsrFile::read(std::uint32_t index) const
{
    auto it = regs_.find(index);
    return it == regs_.end() ? 0 : it->second;
}

bool
MsrFile::touched(std::uint32_t index) const
{
    return regs_.count(index) > 0;
}

void
MsrFile::reset()
{
    regs_.clear();
}

void
MsrFile::setCoreFrequencyGHz(double ghz)
{
    SOFTSKU_ASSERT(ghz > 0.0 && ghz < 12.0);
    auto ratio = static_cast<std::uint64_t>(std::llround(ghz * 10.0));
    write(msr::IA32_PERF_CTL, ratio << 8);
}

double
MsrFile::coreFrequencyGHz(double fallback) const
{
    if (!touched(msr::IA32_PERF_CTL))
        return fallback;
    std::uint64_t ratio = (read(msr::IA32_PERF_CTL) >> 8) & 0xFF;
    return static_cast<double>(ratio) / 10.0;
}

void
MsrFile::setUncoreFrequencyGHz(double ghz)
{
    SOFTSKU_ASSERT(ghz > 0.0 && ghz < 12.0);
    auto ratio = static_cast<std::uint64_t>(std::llround(ghz * 10.0));
    // Pin min and max ratio to the same value, as μSKU does.
    write(msr::UNCORE_RATIO_LIMIT, (ratio << 8) | ratio);
}

double
MsrFile::uncoreFrequencyGHz(double fallback) const
{
    if (!touched(msr::UNCORE_RATIO_LIMIT))
        return fallback;
    std::uint64_t ratio = read(msr::UNCORE_RATIO_LIMIT) & 0x7F;
    return static_cast<double>(ratio) / 10.0;
}

void
MsrFile::setPrefetchers(bool l2Stream, bool l2Adjacent, bool dcuNext,
                        bool dcuIp)
{
    std::uint64_t bits = 0;
    if (!l2Stream)
        bits |= 1u << 0;
    if (!l2Adjacent)
        bits |= 1u << 1;
    if (!dcuNext)
        bits |= 1u << 2;
    if (!dcuIp)
        bits |= 1u << 3;
    write(msr::MISC_FEATURE_CONTROL, bits);
}

MsrFile::PrefetcherBits
MsrFile::prefetchers() const
{
    std::uint64_t bits = read(msr::MISC_FEATURE_CONTROL);
    return {.l2Stream = (bits & (1u << 0)) == 0,
            .l2Adjacent = (bits & (1u << 1)) == 0,
            .dcuNext = (bits & (1u << 2)) == 0,
            .dcuIp = (bits & (1u << 3)) == 0};
}

} // namespace softsku
