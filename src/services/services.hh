/**
 * @file
 * Registry of the seven production microservice models (paper Sec. 2.1).
 *
 * Web      — the HipHop VM serving web requests: enormous JIT code
 *            footprint, request-per-worker threading, heavy blocking.
 * Feed1    — News Feed ranking leaf: dense floating-point feature
 *            vectors, compute-bound.
 * Feed2    — News Feed aggregation: assembles stories from leaves,
 *            seconds-scale requests.
 * Ads1     — user-side ad targeting: FP ranking plus blocking calls,
 *            AVX-heavy (runs 0.2 GHz below peak).
 * Ads2     — ad-side index: traverses a huge sorted ad list.
 * Cache1/2 — distributed-memory object cache tiers: microsecond
 *            requests, extreme context-switch rates, kernel-heavy.
 *
 * Each profile is calibrated so the simulator reproduces the paper's
 * published characterization (Table 2, Figs 2-12) in shape; the
 * paper-reported target values are recorded alongside in
 * CharacterizationTargets for the benches and EXPERIMENTS.md.
 */

#ifndef SOFTSKU_SERVICES_SERVICES_HH
#define SOFTSKU_SERVICES_SERVICES_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace softsku {

/** The Web (HHVM) microservice profile. */
const WorkloadProfile &webProfile();
/** The Feed1 ranking-leaf profile. */
const WorkloadProfile &feed1Profile();
/** The Feed2 aggregation profile. */
const WorkloadProfile &feed2Profile();
/** The Ads1 user-targeting profile. */
const WorkloadProfile &ads1Profile();
/** The Ads2 ad-index profile. */
const WorkloadProfile &ads2Profile();
/** The Cache1 (inner tier) profile. */
const WorkloadProfile &cache1Profile();
/** The Cache2 (client-facing tier) profile. */
const WorkloadProfile &cache2Profile();

/** All seven microservices in the paper's presentation order. */
std::vector<const WorkloadProfile *> allMicroservices();

/** Look up a microservice by name; fatal() on unknown names. */
const WorkloadProfile &serviceByName(const std::string &name);

} // namespace softsku

#endif // SOFTSKU_SERVICES_SERVICES_HH
