/**
 * @file
 * Cache1 and Cache2: the two tiers of the distributed-memory object
 * cache (paper Sec. 2.1).
 *
 * Calibration targets: microsecond requests at O(100K) QPS with tiny
 * path lengths (O(10^3) instructions/query), context-switch rates so
 * high that up to 18% of CPU time goes to switching, the highest
 * kernel-mode share of the fleet, L1 *code* miss rates far above
 * anything in SPEC (distinct thread pools thrash the I-cache), and the
 * lowest IPC (Cache1 ≈ 1.0, 20% of Skylake's peak 5.0).  Substantial
 * arithmetic/control for request parsing and marshalling — their
 * load/store intensity does not stand out the way key-value folklore
 * suggests.  MIPS is NOT a valid performance proxy (exception handlers
 * fire under QoS violations), so μSKU excludes them from A/B tuning.
 * Cache1 is deployed on Skylake20 for its memory bandwidth headroom.
 */

#include "services/services.hh"

namespace softsku {

namespace {

WorkloadProfile
makeCacheTier(int tier)
{
    WorkloadProfile p;
    p.name = tier == 1 ? "cache1" : "cache2";
    p.displayName = tier == 1 ? "Cache1" : "Cache2";
    p.domain = "cache";
    p.defaultPlatform = tier == 1 ? "skylake20" : "skylake18";

    p.mix = {.branch = 0.21,
             .floating = 0.00,
             .arith = 0.35,
             .load = 0.30,
             .store = 0.14};

    p.request.peakQps = tier == 1 ? 3e5 : 5e5;    // O(100K)
    p.request.requestLatencySec = tier == 1 ? 4e-5 : 2.5e-5;  // O(µs)
    p.request.pathLengthInsns = tier == 1 ? 4e3 : 3e3;        // O(10^3)
    p.request.runningFraction = 1.0;   // concurrent paths; not reported
    p.request.blockingPhases = 0;
    p.request.workersPerCore = 3.0;
    p.request.sloLatencyMultiplier = 5.0;

    // Modest binary, but distinct thread pools execute different code
    // and switch constantly: the hot set never survives in L1-I.
    p.codeFootprintBytes = 3ull << 20;
    p.codeZipfSkew = 1.25;
    p.avgFunctionBytes = 448;
    p.avgBasicBlockBytes = 26;
    p.callFraction = 0.18;
    p.jitChurnPerMInsn = 0.0;
    p.codeMadviseHuge = false;
    p.codeUsesShpApi = false;
    p.codeThpFriendliness = 0.8;

    p.branchMispredictRate = 0.013;
    p.branchTakenFraction = 0.58;

    p.dataRegions = {
        {.name = "object_store",
         .sizeBytes = 12ull << 30,
         .pattern = DataPattern::Random,
         .strideBytes = 64,
         .weight = 0.45,
         .zipfSkew = 0.90,           // hot keys
         .hotBytes = 32ull << 20,
         .coldFraction = 0.04,
         .madviseHuge = false,
         .thpFriendliness = 0.5},
        {.name = "hash_index",
         .sizeBytes = 1ull << 30,
         .pattern = DataPattern::PointerChase,
         .strideBytes = 64,
         .weight = 0.25,
         .zipfSkew = 0.85,
         .hotBytes = 16ull << 20,
         .coldFraction = 0.03,
         .madviseHuge = false,
         .thpFriendliness = 0.5},
        {.name = "network_buffers",
         .sizeBytes = 128ull << 20,
         .pattern = DataPattern::Sequential,
         .strideBytes = 64,
         .weight = 0.30,
         .zipfSkew = 0.0,
         .madviseHuge = false,
         .thpFriendliness = 0.7},
    };

    // Up to 18% of a CPU-second switching (Fig 4): ~10^5 switches/s at
    // ~1.7 µs each.
    p.contextSwitch.switchesPerSecond = tier == 1 ? 105000.0 : 90000.0;
    p.contextSwitch.crossPoolFraction = 0.6;
    p.contextSwitch.cost = {1.2, 2.2};
    p.kernelTimeShare = tier == 1 ? 0.16 : 0.14;
    p.switchDisturbance = 0.50;

    p.baseCpi = 0.42;
    p.smtThroughputScale = 1.3;
    p.cpuUtilizationCap = tier == 1 ? 0.55 : 0.60;   // Fig 3
    p.dataMlp = 4.0;
    p.writebackFraction = 0.35;

    p.dataMidReuseFraction = 0.50;
    p.sharedDataFraction = 0.85;
    p.usesAvx = false;
    p.usesShp = false;
    p.toleratesReboot = false;
    // Cache executes exception handlers under QoS violations, making
    // instructions-per-query — and hence MIPS — performance-dependent.
    p.mipsValidMetric = false;
    return p;
}

} // namespace

const WorkloadProfile &
cache1Profile()
{
    static const WorkloadProfile profile = makeCacheTier(1);
    return profile;
}

const WorkloadProfile &
cache2Profile()
{
    static const WorkloadProfile profile = makeCacheTier(2);
    return profile;
}

} // namespace softsku
