/**
 * @file
 * Web: the HipHop Virtual Machine serving end-user web requests
 * (paper Sec. 2.1).
 *
 * Calibration targets from the paper: massive JIT instruction footprint
 * (1.7 LLC code MPKI — almost unheard of in steady state), the highest
 * ITLB miss rate of the fleet, ~37% front-end stall slots, BTB-aliasing
 * misspeculation, per-core IPC ~0.65, 28% of request time running with
 * the rest split across queue/scheduler/IO (Fig 2b), high memory
 * bandwidth use, and the highest sustainable CPU utilization.
 */

#include "services/services.hh"

namespace softsku {

namespace {

WorkloadProfile
makeWeb()
{
    WorkloadProfile p;
    p.name = "web";
    p.displayName = "Web";
    p.domain = "web";
    p.defaultPlatform = "skylake18";

    p.mix = {.branch = 0.20,
             .floating = 0.00,
             .arith = 0.35,
             .load = 0.33,
             .store = 0.12};

    p.request.peakQps = 300.0;                // O(100)
    p.request.requestLatencySec = 5e-3;       // O(ms)
    p.request.pathLengthInsns = 5e6;          // O(10^6)
    p.request.runningFraction = 0.28;         // Fig 2a
    p.request.blockingPhases = 6;             // frequent downstream calls
    p.request.ioFraction = 0.34;              // Fig 2b: IO share of life
    p.request.workersPerCore = 10.0;          // thread over-subscription
    p.request.sloLatencyMultiplier = 6.0;

    // The JIT code cache: enormous, flat-popularity, constantly churning.
    p.codeFootprintBytes = 560ull << 20;
    p.codeZipfSkew = 1.25;
    p.codeHotFunctions = 30000;               // ~18 MiB steady hot set
    p.codeColdCallFraction = 0.008;           // cold endpoints/error paths
    p.avgFunctionBytes = 640;
    p.avgBasicBlockBytes = 28;
    p.callFraction = 0.22;
    p.jitChurnPerMInsn = 0.0015;
    p.codeMadviseHuge = false;                // JIT churn defeats madvise
    p.codeUsesShpApi = true;                  // and can map it on SHPs
    p.codeThpFriendliness = 0.35;

    p.branchMispredictRate = 0.015;
    p.branchTakenFraction = 0.55;

    p.dataRegions = {
        {.name = "php_heap",
         .sizeBytes = 1536ull << 20,
         .pattern = DataPattern::Random,
         .strideBytes = 64,
         .weight = 0.45,
         .zipfSkew = 0.80,
         .hotBytes = 32ull << 20,
         .coldFraction = 0.07,
         .madviseHuge = true,
         .thpFriendliness = 0.55},
        {.name = "request_objects",
         .sizeBytes = 96ull << 20,
         .pattern = DataPattern::PointerChase,
         .strideBytes = 64,
         .weight = 0.25,
         .zipfSkew = 0.85,
         .hotBytes = 12ull << 20,
         .coldFraction = 0.03,
         .madviseHuge = false,
         .thpFriendliness = 0.5},
        {.name = "response_buffers",
         .sizeBytes = 64ull << 20,
         .pattern = DataPattern::Sequential,
         .strideBytes = 64,
         .weight = 0.30,
         .zipfSkew = 0.8,
         .madviseHuge = true,
         .thpFriendliness = 0.45},
    };

    p.contextSwitch.switchesPerSecond = 6000.0;
    p.contextSwitch.crossPoolFraction = 0.2;
    p.kernelTimeShare = 0.05;
    p.switchDisturbance = 0.10;

    p.baseCpi = 0.48;
    p.smtThroughputScale = 1.3;
    p.cpuUtilizationCap = 0.95;               // Fig 3: Web runs hottest
    p.dataMlp = 4.0;
    p.writebackFraction = 0.50;

    p.dataMidReuseFraction = 0.60;
    p.sharedDataFraction = 0.45;
    p.usesAvx = false;
    p.usesShp = true;
    p.toleratesReboot = true;
    p.mipsValidMetric = true;
    return p;
}

} // namespace

const WorkloadProfile &
webProfile()
{
    static const WorkloadProfile profile = makeWeb();
    return profile;
}

} // namespace softsku
