#include "services/spec_suite.hh"

#include <map>

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

namespace {

/** Common scaffold: batch benchmark, no OS/blocking interaction. */
WorkloadProfile
specBase(const std::string &name)
{
    WorkloadProfile p;
    p.name = name;
    p.displayName = name;
    p.domain = "spec2006";
    p.defaultPlatform = "skylake20";

    p.request.peakQps = 1.0;
    p.request.requestLatencySec = 600.0;
    p.request.pathLengthInsns = 1e12;
    p.request.runningFraction = 1.0;
    p.request.blockingPhases = 0;
    p.request.workersPerCore = 1.0;

    p.codeFootprintBytes = 512ull << 10;
    p.codeZipfSkew = 1.6;
    p.avgFunctionBytes = 512;
    p.avgBasicBlockBytes = 40;
    p.callFraction = 0.15;
    p.branchMispredictRate = 0.01;

    p.contextSwitch.switchesPerSecond = 20.0;
    p.kernelTimeShare = 0.005;
    p.switchDisturbance = 0.02;

    p.baseCpi = 0.40;
    p.smtThroughputScale = 1.2;
    p.cpuUtilizationCap = 1.0;
    p.dataMlp = 4.0;
    p.dataReuseFraction = 0.94;
    p.dataMidReuseFraction = 0.55;
    p.sharedDataFraction = 0.0;
    p.writebackFraction = 0.25;
    p.usesShp = false;
    p.mipsValidMetric = true;
    return p;
}

DataRegionSpec
region(const char *name, std::uint64_t sizeBytes, DataPattern pattern,
       double weight, double zipf = 0.9, std::uint64_t hotBytes = 0,
       double cold = 0.01, std::uint64_t stride = 64)
{
    DataRegionSpec r;
    r.name = name;
    r.sizeBytes = sizeBytes;
    r.pattern = pattern;
    r.weight = weight;
    r.zipfSkew = zipf;
    r.hotBytes = hotBytes;
    r.coldFraction = cold;
    r.strideBytes = stride;
    r.thpFriendliness = 0.9;
    return r;
}

std::vector<WorkloadProfile>
buildSuite()
{
    std::vector<WorkloadProfile> suite;

    {   // 400.perlbench: interpreter, branchy, modest working set.
        WorkloadProfile p = specBase("400.perlbench");
        p.mix = {0.21, 0.00, 0.36, 0.31, 0.12};
        p.codeFootprintBytes = 1536ull << 10;
        p.codeZipfSkew = 1.35;
        p.dataRegions = {region("heap", 256ull << 20,
                                DataPattern::Random, 1.0, 1.0,
                                8ull << 20, 0.01)};
        p.baseCpi = 0.42;
        suite.push_back(p);
    }
    {   // 401.bzip2: compression, tight loops, block-sequential data.
        WorkloadProfile p = specBase("401.bzip2");
        p.mix = {0.13, 0.00, 0.40, 0.32, 0.15};
        p.codeFootprintBytes = 128ull << 10;
        p.dataRegions = {
            region("blocks", 128ull << 20, DataPattern::Sequential, 0.6),
            region("tables", 8ull << 20, DataPattern::Random, 0.4, 1.0,
                   4ull << 20, 0.005)};
        p.baseCpi = 0.45;
        suite.push_back(p);
    }
    {   // 403.gcc: big code, irregular data.
        WorkloadProfile p = specBase("403.gcc");
        p.mix = {0.20, 0.00, 0.35, 0.32, 0.13};
        p.codeFootprintBytes = 3ull << 20;
        p.codeZipfSkew = 1.25;
        p.dataRegions = {region("ir", 512ull << 20, DataPattern::Random,
                                1.0, 0.9, 24ull << 20, 0.03)};
        p.baseCpi = 0.45;
        suite.push_back(p);
    }
    {   // 429.mcf: the memory monster — pointer chasing over ~1.7 GiB.
        WorkloadProfile p = specBase("429.mcf");
        p.mix = {0.17, 0.00, 0.29, 0.42, 0.12};
        p.codeFootprintBytes = 64ull << 10;
        p.dataRegions = {region("network", 1700ull << 20,
                                DataPattern::PointerChase, 1.0, 0.4,
                                1024ull << 20, 0.25)};
        p.dataReuseFraction = 0.80;
        p.dataMidReuseFraction = 0.15;
        p.dataMlp = 1.5;
        p.baseCpi = 0.50;
        suite.push_back(p);
    }
    {   // 445.gobmk: game tree search, branchy.
        WorkloadProfile p = specBase("445.gobmk");
        p.mix = {0.22, 0.00, 0.37, 0.29, 0.12};
        p.codeFootprintBytes = 2ull << 20;
        p.branchMispredictRate = 0.025;
        p.dataRegions = {region("board", 64ull << 20, DataPattern::Random,
                                1.0, 1.1, 8ull << 20, 0.01)};
        suite.push_back(p);
    }
    {   // 456.hmmer: dynamic programming, dense and regular.
        WorkloadProfile p = specBase("456.hmmer");
        p.mix = {0.09, 0.00, 0.45, 0.33, 0.13};
        p.codeFootprintBytes = 96ull << 10;
        p.branchMispredictRate = 0.004;
        p.dataRegions = {region("matrix", 48ull << 20,
                                DataPattern::Strided, 1.0, 0.0, 0, 0.0,
                                128)};
        p.baseCpi = 0.35;
        p.dataMlp = 8.0;
        suite.push_back(p);
    }
    {   // 458.sjeng: chess search.
        WorkloadProfile p = specBase("458.sjeng");
        p.mix = {0.21, 0.00, 0.40, 0.27, 0.12};
        p.codeFootprintBytes = 192ull << 10;
        p.branchMispredictRate = 0.022;
        p.dataRegions = {region("hash", 180ull << 20, DataPattern::Random,
                                1.0, 0.5, 64ull << 20, 0.05)};
        suite.push_back(p);
    }
    {   // 462.libquantum: pure streaming over a large vector.
        WorkloadProfile p = specBase("462.libquantum");
        p.mix = {0.26, 0.00, 0.34, 0.27, 0.13};
        p.codeFootprintBytes = 48ull << 10;
        p.branchMispredictRate = 0.002;
        p.dataRegions = {region("register", 512ull << 20,
                                DataPattern::Sequential, 1.0)};
        p.dataReuseFraction = 0.70;
        p.dataMidReuseFraction = 0.05;
        p.dataMlp = 10.0;
        p.baseCpi = 0.38;
        suite.push_back(p);
    }
    {   // 464.h264ref: video encoder, compute-dense.
        WorkloadProfile p = specBase("464.h264ref");
        p.mix = {0.08, 0.02, 0.45, 0.32, 0.13};
        p.codeFootprintBytes = 768ull << 10;
        p.dataRegions = {
            region("frames", 96ull << 20, DataPattern::Strided, 0.7,
                   0.0, 0, 0.0, 96),
            region("refs", 32ull << 20, DataPattern::Random, 0.3, 1.0,
                   16ull << 20, 0.005)};
        p.baseCpi = 0.35;
        p.dataMlp = 6.0;
        suite.push_back(p);
    }
    {   // 471.omnetpp: discrete-event simulation, heap-scattered.
        WorkloadProfile p = specBase("471.omnetpp");
        p.mix = {0.21, 0.00, 0.32, 0.34, 0.13};
        p.codeFootprintBytes = 1ull << 20;
        p.dataRegions = {region("events", 512ull << 20,
                                DataPattern::PointerChase, 1.0, 0.5,
                                256ull << 20, 0.08)};
        p.dataReuseFraction = 0.85;
        p.dataMidReuseFraction = 0.25;
        p.dataMlp = 2.0;
        suite.push_back(p);
    }
    {   // 473.astar: path finding.
        WorkloadProfile p = specBase("473.astar");
        p.mix = {0.16, 0.00, 0.34, 0.37, 0.13};
        p.codeFootprintBytes = 96ull << 10;
        p.dataRegions = {region("grid", 256ull << 20, DataPattern::Random,
                                1.0, 0.7, 96ull << 20, 0.06)};
        p.dataMlp = 2.5;
        suite.push_back(p);
    }
    {   // 483.xalancbmk: XML transformation, branchy with big-ish code.
        WorkloadProfile p = specBase("483.xalancbmk");
        p.mix = {0.25, 0.00, 0.33, 0.30, 0.12};
        p.codeFootprintBytes = 4ull << 20;
        p.codeZipfSkew = 1.3;
        p.branchMispredictRate = 0.014;
        p.dataRegions = {region("dom", 384ull << 20, DataPattern::Random,
                                1.0, 0.9, 32ull << 20, 0.02)};
        suite.push_back(p);
    }
    return suite;
}

const std::vector<WorkloadProfile> &
suiteStorage()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

} // namespace

std::vector<const WorkloadProfile *>
specSuite()
{
    std::vector<const WorkloadProfile *> out;
    for (const WorkloadProfile &p : suiteStorage())
        out.push_back(&p);
    return out;
}

const WorkloadProfile &
specByName(const std::string &name)
{
    for (const WorkloadProfile &p : suiteStorage()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown SPEC benchmark '%s'", name.c_str());
}

} // namespace softsku
