/**
 * @file
 * Ads1 and Ads2: user-side ad targeting/ranking and the ad-side index
 * (paper Sec. 2.1).
 *
 * Ads1 targets: FP-bearing ranking models, AVX-heavy enough that
 * production caps its core frequency at 2.0 GHz (shared core/uncore
 * power budget), 62% running / 38% blocked, moderate code footprint,
 * bursty memory traffic (operates *above* the characteristic
 * latency curve in Fig 12), and a load-balancer design that cannot
 * tolerate μSKU core-count reboots.  It allocates no SHPs.
 *
 * Ads2 targets: traverses a huge sorted ad list (leaf, 90% running),
 * the largest data working set of the fleet (LLC capacity never
 * suffices, Fig 10), deployed on the high-bandwidth Skylake20.
 */

#include "services/services.hh"

namespace softsku {

namespace {

WorkloadProfile
makeAds1()
{
    WorkloadProfile p;
    p.name = "ads1";
    p.displayName = "Ads1";
    p.domain = "ads";
    p.defaultPlatform = "skylake18";

    p.mix = {.branch = 0.13,
             .floating = 0.16,
             .arith = 0.27,
             .load = 0.33,
             .store = 0.11};

    p.request.peakQps = 30.0;                 // O(10)
    p.request.requestLatencySec = 4e-2;       // O(ms)
    p.request.pathLengthInsns = 2.5e9;        // O(10^9)
    p.request.runningFraction = 0.62;
    p.request.blockingPhases = 3;             // calls into Ads2
    p.request.workersPerCore = 2.0;
    p.request.sloLatencyMultiplier = 3.0;

    p.codeFootprintBytes = 14ull << 20;
    p.codeZipfSkew = 1.45;
    p.avgFunctionBytes = 512;
    p.avgBasicBlockBytes = 36;
    p.callFraction = 0.24;
    p.jitChurnPerMInsn = 0.0;
    p.codeMadviseHuge = false;
    p.codeUsesShpApi = false;
    p.codeThpFriendliness = 0.85;

    p.branchMispredictRate = 0.011;
    p.branchTakenFraction = 0.55;

    p.dataRegions = {
        {.name = "user_models",
         .sizeBytes = 1024ull << 20,
         .pattern = DataPattern::Strided,
         .strideBytes = 192,
         .weight = 0.40,
         .zipfSkew = 0.0,
         .madviseHuge = true,
         .thpFriendliness = 0.85},
        {.name = "candidate_heap",
         .sizeBytes = 512ull << 20,
         .pattern = DataPattern::Random,
         .strideBytes = 64,
         .weight = 0.40,
         .zipfSkew = 0.80,
         .hotBytes = 24ull << 20,
         .coldFraction = 0.03,
         .madviseHuge = false,
         .thpFriendliness = 0.12},
        {.name = "ranking_scratch",
         .sizeBytes = 64ull << 20,
         .pattern = DataPattern::Sequential,
         .strideBytes = 64,
         .weight = 0.20,
         .zipfSkew = 0.0,
         .madviseHuge = false,
         .thpFriendliness = 0.25},
    };

    p.contextSwitch.switchesPerSecond = 3500.0;
    p.contextSwitch.crossPoolFraction = 0.2;
    p.kernelTimeShare = 0.03;
    p.switchDisturbance = 0.10;

    p.baseCpi = 0.46;
    p.smtThroughputScale = 1.25;
    p.dataReuseFraction = 0.94;
    p.cpuUtilizationCap = 0.70;
    p.dataMlp = 4.0;
    p.writebackFraction = 0.28;

    p.dataMidReuseFraction = 0.60;
    p.sharedDataFraction = 0.40;
    p.usesAvx = true;                         // production runs at 2.0 GHz
    p.usesShp = false;                        // no SHP API use (Sec. 4)
    p.toleratesReboot = false;                // QoS precludes core scaling
    p.mipsValidMetric = true;
    return p;
}

WorkloadProfile
makeAds2()
{
    WorkloadProfile p;
    p.name = "ads2";
    p.displayName = "Ads2";
    p.domain = "ads";
    p.defaultPlatform = "skylake20";

    p.mix = {.branch = 0.15,
             .floating = 0.07,
             .arith = 0.26,
             .load = 0.39,
             .store = 0.13};

    p.request.peakQps = 400.0;                // O(100)
    p.request.requestLatencySec = 1.2e-2;     // O(ms)
    p.request.pathLengthInsns = 1.1e9;        // O(10^9)
    p.request.runningFraction = 0.90;         // leaf
    p.request.blockingPhases = 1;
    p.request.workersPerCore = 1.5;
    p.request.sloLatencyMultiplier = 3.0;

    p.codeFootprintBytes = 10ull << 20;
    p.codeZipfSkew = 1.50;
    p.avgFunctionBytes = 512;
    p.avgBasicBlockBytes = 40;
    p.callFraction = 0.20;
    p.jitChurnPerMInsn = 0.0;
    p.codeMadviseHuge = false;
    p.codeUsesShpApi = false;
    p.codeThpFriendliness = 0.85;

    p.branchMispredictRate = 0.012;
    p.branchTakenFraction = 0.55;

    p.dataRegions = {
        // The sorted ad index: enormous, scanned with poor temporal
        // locality — the "largest working set too large to capture"
        // case of Fig 10.
        {.name = "ad_index",
         .sizeBytes = 4ull << 30,
         .pattern = DataPattern::Random,
         .strideBytes = 64,
         .weight = 0.55,
         .zipfSkew = 0.70,
         .hotBytes = 128ull << 20,
         .coldFraction = 0.04,
         .madviseHuge = true,
         .thpFriendliness = 0.85},
        {.name = "targeting_structs",
         .sizeBytes = 768ull << 20,
         .pattern = DataPattern::PointerChase,
         .strideBytes = 64,
         .weight = 0.08,
         .zipfSkew = 0.9,
         .hotBytes = 24ull << 20,
         .coldFraction = 0.03,
         .madviseHuge = false,
         .thpFriendliness = 0.55},
        {.name = "result_buffers",
         .sizeBytes = 96ull << 20,
         .pattern = DataPattern::Sequential,
         .strideBytes = 64,
         .weight = 0.37,
         .zipfSkew = 0.0,
         .madviseHuge = false,
         .thpFriendliness = 0.8},
    };

    p.contextSwitch.switchesPerSecond = 2500.0;
    p.contextSwitch.crossPoolFraction = 0.15;
    p.kernelTimeShare = 0.03;
    p.switchDisturbance = 0.10;

    p.baseCpi = 0.50;
    p.smtThroughputScale = 1.25;
    p.cpuUtilizationCap = 0.75;
    p.dataMlp = 6.0;
    p.writebackFraction = 0.30;

    p.dataMidReuseFraction = 0.45;
    p.sharedDataFraction = 0.35;
    p.usesAvx = false;
    p.usesShp = true;
    p.toleratesReboot = true;
    p.mipsValidMetric = true;
    return p;
}

} // namespace

const WorkloadProfile &
ads1Profile()
{
    static const WorkloadProfile profile = makeAds1();
    return profile;
}

const WorkloadProfile &
ads2Profile()
{
    static const WorkloadProfile profile = makeAds2();
    return profile;
}

} // namespace softsku
