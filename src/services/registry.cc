#include "services/services.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

std::vector<const WorkloadProfile *>
allMicroservices()
{
    return {&webProfile(),  &feed1Profile(),  &feed2Profile(),
            &ads1Profile(), &ads2Profile(),   &cache1Profile(),
            &cache2Profile()};
}

const WorkloadProfile &
serviceByName(const std::string &name)
{
    std::string key = toLower(name);
    for (const WorkloadProfile *profile : allMicroservices()) {
        if (profile->name == key)
            return *profile;
    }
    fatal("unknown microservice '%s' (expected web, feed1, feed2, ads1, "
          "ads2, cache1, or cache2)", name.c_str());
}

} // namespace softsku
