/**
 * @file
 * Literature-reported comparison values.
 *
 * The paper reproduces selected numbers from published reports for
 * context — Google services from Kanev'15 and Ayers'18 (Haswell),
 * CloudSuite from Ferdman'12 (Westmere), SPEC CPU2017 from Limaye'18
 * (Haswell) — and plots them beside its own measurements (Figs 6-8),
 * with the caveat that they come from different hardware.  We keep the
 * same approximate values as constants so the figure benches can print
 * the same comparison columns.
 */

#ifndef SOFTSKU_SERVICES_REPORTED_HH
#define SOFTSKU_SERVICES_REPORTED_HH

#include <string>
#include <vector>

namespace softsku {

/** One externally reported workload measurement. */
struct ReportedWorkload
{
    std::string name;
    std::string source;        //!< e.g. "Kanev'15 (Haswell)"
    double ipc = 0.0;          //!< per-core IPC; 0 = not reported
    double retiringPct = 0.0;  //!< top-down slots; 0 = not reported
    double frontEndPct = 0.0;
    double badSpecPct = 0.0;
    double backEndPct = 0.0;
    double l1iMpki = 0.0;      //!< -1 = not reported
    double l1dMpki = 0.0;
    double l2Mpki = 0.0;
    double llcMpki = 0.0;
};

/** Google services from Kanev'15 (IPC and top-down). */
std::vector<ReportedWorkload> googleKanev15();

/** Google web search from Ayers'18 (cache MPKIs). */
std::vector<ReportedWorkload> googleAyers18();

/** CloudSuite workloads from Ferdman'12 (IPC). */
std::vector<ReportedWorkload> cloudSuiteFerdman12();

/** SPEC CPU2017 suite averages from Limaye'18 (IPC). */
std::vector<ReportedWorkload> spec2017Limaye18();

} // namespace softsku

#endif // SOFTSKU_SERVICES_REPORTED_HH
