/**
 * @file
 * SPEC CPU2006-like comparison workloads.
 *
 * The paper contrasts its microservices against SPEC CPU2006 measured
 * on Skylake20 (Figs 5, 6, 7, 8, 9, 11).  These profiles are synthetic
 * stand-ins run through the same simulator: small instruction
 * footprints, no OS interaction, no request blocking, and each
 * benchmark's signature memory behaviour (mcf's pointer chasing,
 * libquantum's streaming, xalancbmk's branchy tree walking, ...).
 */

#ifndef SOFTSKU_SERVICES_SPEC_SUITE_HH
#define SOFTSKU_SERVICES_SPEC_SUITE_HH

#include <vector>

#include "workload/profile.hh"

namespace softsku {

/** The twelve SPEC CPU2006 integer stand-ins, in the paper's order. */
std::vector<const WorkloadProfile *> specSuite();

/** Look up one SPEC profile by name (e.g. "429.mcf"); fatal if unknown. */
const WorkloadProfile &specByName(const std::string &name);

} // namespace softsku

#endif // SOFTSKU_SERVICES_SPEC_SUITE_HH
