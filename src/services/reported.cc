#include "services/reported.hh"

namespace softsku {

namespace {

ReportedWorkload
make(const char *name, const char *source, double ipc, double ret = 0,
     double fe = 0, double bs = 0, double be = 0)
{
    ReportedWorkload w;
    w.name = name;
    w.source = source;
    w.ipc = ipc;
    w.retiringPct = ret;
    w.frontEndPct = fe;
    w.badSpecPct = bs;
    w.backEndPct = be;
    return w;
}

} // namespace

std::vector<ReportedWorkload>
googleKanev15()
{
    const char *src = "Kanev'15 (Haswell)";
    // Approximate values read from the published per-service figures.
    return {
        make("Ads", src, 1.1, 32, 22, 12, 34),
        make("Bigtable", src, 0.9, 29, 29, 11, 31),
        make("Disk", src, 0.9, 36, 29, 12, 23),
        make("Flight-search", src, 1.2, 36, 22, 12, 30),
        make("Gmail", src, 0.9, 27, 36, 13, 24),
        make("Gmail-fe", src, 0.8, 24, 37, 13, 26),
        make("Indexing1", src, 1.0, 31, 27, 12, 30),
        make("Indexing2", src, 1.1, 34, 22, 13, 31),
        make("Search1", src, 1.1, 36, 22, 13, 29),
        make("Search2", src, 1.2, 38, 22, 14, 26),
        make("Search3", src, 1.0, 34, 24, 13, 29),
        make("Video", src, 1.3, 41, 17, 11, 31),
    };
}

std::vector<ReportedWorkload>
googleAyers18()
{
    const char *src = "Ayers'18 (Haswell)";
    ReportedWorkload leaf = make("Search1-Leaf", src, 1.2, 36, 29, 6, 29);
    leaf.l1iMpki = 13.0;
    leaf.l1dMpki = 32.0;
    leaf.l2Mpki = 15.0;
    leaf.llcMpki = 1.1;
    return {leaf};
}

std::vector<ReportedWorkload>
cloudSuiteFerdman12()
{
    const char *src = "Ferdman'12 (Westmere)";
    return {
        make("Data Serving", src, 0.7),
        make("MapReduce", src, 0.7),
        make("Media Streaming", src, 0.9),
        make("SAT Solver", src, 1.0),
        make("Web Frontend", src, 0.6),
        make("Web Search", src, 0.8),
    };
}

std::vector<ReportedWorkload>
spec2017Limaye18()
{
    const char *src = "Limaye'18 (Haswell)";
    return {
        make("Rate-int-avg", src, 1.6),
        make("Rate-fp-avg", src, 1.8),
        make("Speed-int-avg", src, 1.7),
        make("Speed-fp-avg", src, 2.0),
    };
}

} // namespace softsku
