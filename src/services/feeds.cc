/**
 * @file
 * Feed1 and Feed2: the News Feed ranking leaf and story aggregator
 * (paper Sec. 2.1).
 *
 * Feed1 targets: floating-point-dominated instruction mix, almost
 * entirely compute-bound (95% running), the highest LLC *data* MPKI of
 * the fleet (~9.3) from traversing large feature structures — yet a
 * comparatively low DTLB MPKI (~5.8) because the dense vectors give
 * excellent page locality.  The highest IPC of the seven.
 *
 * Feed2 targets: seconds-scale requests (O(10) QPS), moderate FP,
 * substantial blocking on leaf services (69% running), small
 * front-end footprint, mid-pack IPC.
 */

#include "services/services.hh"

namespace softsku {

namespace {

WorkloadProfile
makeFeed1()
{
    WorkloadProfile p;
    p.name = "feed1";
    p.displayName = "Feed1";
    p.domain = "feed";
    p.defaultPlatform = "skylake18";

    p.mix = {.branch = 0.10,
             .floating = 0.38,
             .arith = 0.18,
             .load = 0.26,
             .store = 0.08};

    p.request.peakQps = 1500.0;               // O(1000)
    p.request.requestLatencySec = 6e-3;       // O(ms)
    p.request.pathLengthInsns = 1.2e9;        // O(10^9)
    p.request.runningFraction = 0.95;         // leaf: compute-bound
    p.request.blockingPhases = 1;             // rare store lookups
    p.request.workersPerCore = 1.5;
    p.request.sloLatencyMultiplier = 3.0;

    // Compact, hot ranking kernels.
    p.codeFootprintBytes = 6ull << 20;
    p.codeZipfSkew = 1.60;
    p.avgFunctionBytes = 512;
    p.avgBasicBlockBytes = 48;
    p.callFraction = 0.18;
    p.jitChurnPerMInsn = 0.0;
    p.codeMadviseHuge = false;
    p.codeUsesShpApi = false;
    p.codeThpFriendliness = 0.9;

    p.branchMispredictRate = 0.006;           // data-crunching: predictable
    p.branchTakenFraction = 0.55;

    p.dataRegions = {
        // Dense feature vectors: streamed, page-friendly, but far too
        // large for the LLC — high LLC data MPKI, low DTLB MPKI.
        {.name = "feature_vectors",
         .sizeBytes = 3ull << 30,
         .pattern = DataPattern::Strided,
         .strideBytes = 128,
         .weight = 0.55,
         .zipfSkew = 0.0,
         .madviseHuge = true,
         .thpFriendliness = 0.95},
        {.name = "model_weights",
         .sizeBytes = 512ull << 20,
         .pattern = DataPattern::Sequential,
         .strideBytes = 64,
         .weight = 0.35,
         .zipfSkew = 0.0,
         .madviseHuge = true,
         .thpFriendliness = 0.95},
        {.name = "scratch",
         .sizeBytes = 32ull << 20,
         .pattern = DataPattern::Random,
         .strideBytes = 64,
         .weight = 0.10,
         .zipfSkew = 0.9,
         .hotBytes = 8ull << 20,
         .coldFraction = 0.03,
         .madviseHuge = false,
         .thpFriendliness = 0.8},
    };

    p.contextSwitch.switchesPerSecond = 900.0;
    p.contextSwitch.crossPoolFraction = 0.1;
    p.kernelTimeShare = 0.02;
    p.switchDisturbance = 0.08;

    p.baseCpi = 0.38;
    p.smtThroughputScale = 1.2;
    p.dataReuseFraction = 0.95;
    p.dataMidReuseFraction = 0.15;
    p.cpuUtilizationCap = 0.65;               // strict latency SLO
    p.dataMlp = 8.0;                          // independent vector loads
    p.writebackFraction = 0.20;

    p.sharedDataFraction = 0.55;
    p.usesAvx = false;
    p.usesShp = true;
    p.toleratesReboot = true;
    p.mipsValidMetric = true;
    return p;
}

WorkloadProfile
makeFeed2()
{
    WorkloadProfile p;
    p.name = "feed2";
    p.displayName = "Feed2";
    p.domain = "feed";
    p.defaultPlatform = "skylake18";

    p.mix = {.branch = 0.16,
             .floating = 0.10,
             .arith = 0.30,
             .load = 0.32,
             .store = 0.12};

    p.request.peakQps = 20.0;                 // O(10)
    p.request.requestLatencySec = 1.5;        // O(s)
    p.request.pathLengthInsns = 3e9;          // O(10^9)
    p.request.runningFraction = 0.69;
    p.request.blockingPhases = 4;
    p.request.workersPerCore = 2.0;
    p.request.sloLatencyMultiplier = 3.0;

    p.codeFootprintBytes = 12ull << 20;
    p.codeZipfSkew = 1.50;
    p.avgFunctionBytes = 512;
    p.avgBasicBlockBytes = 40;
    p.callFraction = 0.22;
    p.jitChurnPerMInsn = 0.0;
    p.codeMadviseHuge = false;
    p.codeUsesShpApi = false;
    p.codeThpFriendliness = 0.85;

    p.branchMispredictRate = 0.010;
    p.branchTakenFraction = 0.55;

    p.dataRegions = {
        {.name = "stories",
         .sizeBytes = 512ull << 20,
         .pattern = DataPattern::Random,
         .strideBytes = 64,
         .weight = 0.40,
         .zipfSkew = 0.80,
         .hotBytes = 24ull << 20,
         .coldFraction = 0.03,
         .madviseHuge = false,
         .thpFriendliness = 0.6},
        {.name = "feature_extract",
         .sizeBytes = 256ull << 20,
         .pattern = DataPattern::Strided,
         .strideBytes = 256,
         .weight = 0.35,
         .zipfSkew = 0.0,
         .madviseHuge = true,
         .thpFriendliness = 0.9},
        {.name = "aggregation_buffers",
         .sizeBytes = 128ull << 20,
         .pattern = DataPattern::Sequential,
         .strideBytes = 64,
         .weight = 0.25,
         .zipfSkew = 0.0,
         .madviseHuge = false,
         .thpFriendliness = 0.8},
    };

    p.contextSwitch.switchesPerSecond = 2000.0;
    p.contextSwitch.crossPoolFraction = 0.15;
    p.kernelTimeShare = 0.03;
    p.switchDisturbance = 0.10;

    p.baseCpi = 0.48;
    p.smtThroughputScale = 1.25;
    p.dataReuseFraction = 0.95;
    p.cpuUtilizationCap = 0.75;
    p.dataMlp = 4.5;
    p.writebackFraction = 0.25;

    p.sharedDataFraction = 0.40;
    p.usesAvx = false;
    p.usesShp = true;
    p.toleratesReboot = true;
    p.mipsValidMetric = true;
    return p;
}

} // namespace

const WorkloadProfile &
feed1Profile()
{
    static const WorkloadProfile profile = makeFeed1();
    return profile;
}

const WorkloadProfile &
feed2Profile()
{
    static const WorkloadProfile profile = makeFeed2();
    return profile;
}

} // namespace softsku
